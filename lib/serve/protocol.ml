module J = Telemetry.Json_check

type run_request = {
  workload : string;
  technique : string;
  half : bool;
  es_override : int option;
  variant : string;
  quick : bool;
  grid_scale : float option;
}

type request =
  | Ping
  | Run of run_request
  | Trace of run_request
  | Suite of { entries : string list; quick : bool }
  | Fuzz of {
      n_seeds : int;
      seed0 : int;
      inject : string option;
      do_shrink : bool;
    }
  | Metrics
  | Stats
  | Logs of { max_lines : int }
  | Compact
  | Shutdown

type run_payload = {
  key : string;
  fingerprint : string;
  cycles : int;
  instructions : int;
  theoretical_occupancy : float;
  achieved_occupancy : float;
  warm : bool;
}

type response =
  | Ok_ping
  | Ok_run of run_payload
  | Ok_trace of { events : int; trace : string }
  | Ok_suite of { output : string }
  | Ok_fuzz of {
      tested : int;
      failures : int;
      injected : int;
      caught : int;
      output : string;
    }
  | Ok_metrics of string
  | Ok_stats of (string * float) list
  | Ok_logs of { lines : string list; dropped : int }
  | Ok_compact of { files : int; bytes : int }
  | Ok_shutdown
  | Busy
  | Error of { code : string; message : string }

let run_request ?(half = false) ?es_override ?(variant = "") ?(quick = false)
    ?grid_scale ~workload ~technique () =
  { workload; technique; half; es_override; variant; quick; grid_scale }

let request_type = function
  | Ping -> "ping"
  | Run _ -> "run"
  | Trace _ -> "trace"
  | Suite _ -> "suite"
  | Fuzz _ -> "fuzz"
  | Metrics -> "metrics"
  | Stats -> "stats"
  | Logs _ -> "logs"
  | Compact -> "compact"
  | Shutdown -> "shutdown"

(* --- encoding ---------------------------------------------------------- *)

let num_i i = J.Num (float_of_int i)

let opt_field name f = function None -> [] | Some v -> [ (name, f v) ]

let run_request_fields r =
  [ ("workload", J.Str r.workload); ("technique", J.Str r.technique);
    ("half", J.Bool r.half) ]
  @ opt_field "es" num_i r.es_override
  @ (if r.variant = "" then [] else [ ("variant", J.Str r.variant) ])
  @ [ ("quick", J.Bool r.quick) ]
  @ opt_field "grid_scale" (fun s -> J.Num s) r.grid_scale

let encode_request id req =
  let typed fields = ("type", J.Str (request_type req)) :: fields in
  let fields =
    match req with
    | Ping | Metrics | Stats | Compact | Shutdown -> typed []
    | Logs { max_lines } -> typed [ ("max", num_i max_lines) ]
    | Run r | Trace r -> typed (run_request_fields r)
    | Suite { entries; quick } ->
        typed
          [ ("entries", J.List (List.map (fun e -> J.Str e) entries));
            ("quick", J.Bool quick) ]
    | Fuzz { n_seeds; seed0; inject; do_shrink } ->
        typed
          ([ ("seeds", num_i n_seeds); ("seed0", num_i seed0) ]
          @ opt_field "inject" (fun f -> J.Str f) inject
          @ [ ("shrink", J.Bool do_shrink) ])
  in
  J.to_string (J.Obj (("id", num_i id) :: fields))

let encode_response id resp =
  let ok fields = ("status", J.Str "ok") :: fields in
  let fields =
    match resp with
    | Ok_ping -> ok [ ("type", J.Str "ping") ]
    | Ok_run p ->
        ok
          [ ("type", J.Str "run"); ("key", J.Str p.key);
            ("fingerprint", J.Str p.fingerprint); ("cycles", num_i p.cycles);
            ("instructions", num_i p.instructions);
            ("theoretical_occupancy", J.Num p.theoretical_occupancy);
            ("achieved_occupancy", J.Num p.achieved_occupancy);
            ("warm", J.Bool p.warm) ]
    | Ok_trace { events; trace } ->
        ok [ ("type", J.Str "trace"); ("events", num_i events);
             ("trace", J.Str trace) ]
    | Ok_suite { output } ->
        ok [ ("type", J.Str "suite"); ("output", J.Str output) ]
    | Ok_fuzz { tested; failures; injected; caught; output } ->
        ok
          [ ("type", J.Str "fuzz"); ("tested", num_i tested);
            ("failures", num_i failures); ("injected", num_i injected);
            ("caught", num_i caught); ("output", J.Str output) ]
    | Ok_metrics text -> ok [ ("type", J.Str "metrics"); ("text", J.Str text) ]
    | Ok_stats kvs ->
        ok
          [ ("type", J.Str "stats");
            ("stats", J.Obj (List.map (fun (k, v) -> (k, J.Num v)) kvs)) ]
    | Ok_logs { lines; dropped } ->
        ok
          [ ("type", J.Str "logs");
            ("lines", J.List (List.map (fun l -> J.Str l) lines));
            ("dropped", num_i dropped) ]
    | Ok_compact { files; bytes } ->
        ok [ ("type", J.Str "compact"); ("files", num_i files);
             ("bytes", num_i bytes) ]
    | Ok_shutdown -> ok [ ("type", J.Str "shutdown") ]
    | Busy -> [ ("status", J.Str "busy") ]
    | Error { code; message } ->
        [ ("status", J.Str "error"); ("code", J.Str code);
          ("message", J.Str message) ]
  in
  J.to_string (J.Obj (("id", num_i id) :: fields))

(* --- decoding ---------------------------------------------------------- *)

let field name = function J.Obj kvs -> List.assoc_opt name kvs | _ -> None

let str_field name j =
  match field name j with Some (J.Str s) -> Some s | _ -> None

let num_field name j =
  match field name j with Some (J.Num f) -> Some f | _ -> None

let int_field name j = Option.map int_of_float (num_field name j)

let bool_field ~default name j =
  match field name j with Some (J.Bool b) -> b | _ -> default

let decode_run_request j =
  match (str_field "workload" j, str_field "technique" j) with
  | Some workload, Some technique ->
      Ok
        {
          workload;
          technique;
          half = bool_field ~default:false "half" j;
          es_override = int_field "es" j;
          variant = Option.value ~default:"" (str_field "variant" j);
          quick = bool_field ~default:false "quick" j;
          grid_scale = num_field "grid_scale" j;
        }
  | _ -> Result.Error "missing workload or technique"

let decode_frame line =
  match J.parse_opt line with
  | Result.Error msg -> Result.Error msg
  | Ok j -> (
      match int_field "id" j with
      | None -> Result.Error "missing id"
      | Some id -> Ok (id, j))

let decode_request line =
  Result.bind (decode_frame line) (fun (id, j) ->
      let with_id r = Result.map (fun req -> (id, req)) r in
      match str_field "type" j with
      | Some "ping" -> Ok (id, Ping)
      | Some "run" -> with_id (Result.map (fun r -> Run r) (decode_run_request j))
      | Some "trace" ->
          with_id (Result.map (fun r -> Trace r) (decode_run_request j))
      | Some "suite" ->
          let entries =
            match field "entries" j with
            | Some (J.List l) ->
                List.filter_map (function J.Str s -> Some s | _ -> None) l
            | _ -> []
          in
          Ok (id, Suite { entries; quick = bool_field ~default:false "quick" j })
      | Some "fuzz" ->
          Ok
            ( id,
              Fuzz
                {
                  n_seeds = Option.value ~default:100 (int_field "seeds" j);
                  seed0 = Option.value ~default:0 (int_field "seed0" j);
                  inject = str_field "inject" j;
                  do_shrink = bool_field ~default:false "shrink" j;
                } )
      | Some "metrics" -> Ok (id, Metrics)
      | Some "stats" -> Ok (id, Stats)
      | Some "logs" ->
          Ok (id, Logs { max_lines = Option.value ~default:100 (int_field "max" j) })
      | Some "compact" -> Ok (id, Compact)
      | Some "shutdown" -> Ok (id, Shutdown)
      | Some t -> Result.Error (Printf.sprintf "unknown request type %S" t)
      | None -> Result.Error "missing type")

let require name = function
  | Some v -> Ok v
  | None -> Result.Error ("missing " ^ name)

let decode_response line =
  Result.bind (decode_frame line) (fun (id, j) ->
      let ( let* ) = Result.bind in
      match str_field "status" j with
      | Some "busy" -> Ok (id, Busy)
      | Some "error" ->
          Ok
            ( id,
              Error
                {
                  code = Option.value ~default:"unknown" (str_field "code" j);
                  message = Option.value ~default:"" (str_field "message" j);
                } )
      | Some "ok" -> (
          match str_field "type" j with
          | Some "ping" -> Ok (id, Ok_ping)
          | Some "run" ->
              let* key = require "key" (str_field "key" j) in
              let* fingerprint =
                require "fingerprint" (str_field "fingerprint" j)
              in
              let* cycles = require "cycles" (int_field "cycles" j) in
              let* instructions =
                require "instructions" (int_field "instructions" j)
              in
              Ok
                ( id,
                  Ok_run
                    {
                      key;
                      fingerprint;
                      cycles;
                      instructions;
                      theoretical_occupancy =
                        Option.value ~default:0.
                          (num_field "theoretical_occupancy" j);
                      achieved_occupancy =
                        Option.value ~default:0.
                          (num_field "achieved_occupancy" j);
                      warm = bool_field ~default:false "warm" j;
                    } )
          | Some "trace" ->
              let* trace = require "trace" (str_field "trace" j) in
              Ok
                ( id,
                  Ok_trace
                    { events = Option.value ~default:0 (int_field "events" j);
                      trace } )
          | Some "suite" ->
              let* output = require "output" (str_field "output" j) in
              Ok (id, Ok_suite { output })
          | Some "fuzz" ->
              let* output = require "output" (str_field "output" j) in
              let get name = Option.value ~default:0 (int_field name j) in
              Ok
                ( id,
                  Ok_fuzz
                    {
                      tested = get "tested";
                      failures = get "failures";
                      injected = get "injected";
                      caught = get "caught";
                      output;
                    } )
          | Some "metrics" ->
              let* text = require "text" (str_field "text" j) in
              Ok (id, Ok_metrics text)
          | Some "stats" -> (
              match field "stats" j with
              | Some (J.Obj kvs) ->
                  Ok
                    ( id,
                      Ok_stats
                        (List.filter_map
                           (function
                             | k, J.Num v -> Some (k, v) | _ -> None)
                           kvs) )
              | _ -> Result.Error "missing stats")
          | Some "logs" ->
              let lines =
                match field "lines" j with
                | Some (J.List l) ->
                    List.filter_map (function J.Str s -> Some s | _ -> None) l
                | _ -> []
              in
              Ok
                ( id,
                  Ok_logs
                    { lines;
                      dropped = Option.value ~default:0 (int_field "dropped" j) } )
          | Some "compact" ->
              Ok
                ( id,
                  Ok_compact
                    {
                      files = Option.value ~default:0 (int_field "files" j);
                      bytes = Option.value ~default:0 (int_field "bytes" j);
                    } )
          | Some "shutdown" -> Ok (id, Ok_shutdown)
          | Some t -> Result.Error (Printf.sprintf "unknown response type %S" t)
          | None -> Result.Error "missing type")
      | Some s -> Result.Error (Printf.sprintf "unknown status %S" s)
      | None -> Result.Error "missing status")
