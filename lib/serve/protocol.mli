(** Line-delimited JSON protocol of the [regmutex serve] daemon.

    One request per line, one response line per request, both rendered
    with {!Telemetry.Json_check.to_string} (no interior newlines) and
    parsed with [Json_check.parse] — no external JSON dependency. Each
    request carries a client-chosen [id] echoed on its response, so one
    connection can pipeline requests; responses to jobs that compute
    arrive in completion order.

    Request object: [{"id": N, "type": T, ...}] with [T] one of [ping],
    [run], [trace], [suite], [fuzz], [metrics], [stats], [logs],
    [compact], [shutdown]. Response object: [{"id": N, "status": S, ...}] with [S]
    one of [ok], [busy] (back-pressure: the job queue is full — retry),
    or [error] (with [code] and [message]).

    Error codes: [bad-request] (malformed frame or field),
    [unknown-workload], [unknown-technique], [unknown-experiment],
    [unknown-fault], [compute-failed] (the simulation raised), and
    [shutting-down] (request arrived after [shutdown] was accepted).

    See EXPERIMENTS.md "Sweep as a service" for the field-by-field
    schema. *)

(** One experiment cell, mirroring {!Experiments.Engine.cell}: workload
    by registry name, technique by CLI name, full or halved register
    file, optional |Es| override and grid scale, free-form variant
    label, quick or default grids. *)
type run_request = {
  workload : string;
  technique : string;
  half : bool;
  es_override : int option;
  variant : string;
  quick : bool;
  grid_scale : float option;
}

type request =
  | Ping
  | Run of run_request  (** simulate (or recall) one cell *)
  | Trace of run_request
      (** simulate with the telemetry sink attached and stream back the
          Chrome trace-event JSON *)
  | Suite of { entries : string list; quick : bool }
      (** render whole experiments (empty [entries] = all) exactly as
          [regmutex sweep] would print them *)
  | Fuzz of {
      n_seeds : int;
      seed0 : int;
      inject : string option;
      do_shrink : bool;
    }  (** a fuzzing batch (no corpus persistence on the daemon) *)
  | Metrics  (** Prometheus text of the daemon's own registry *)
  | Stats  (** server counters as JSON *)
  | Logs of { max_lines : int }
      (** tail the daemon's structured log: the most recent [max_lines]
          JSON-lines records across every domain's ring buffer *)
  | Compact  (** drop stale-version result-store directories *)
  | Shutdown  (** stop accepting work, drain, exit *)

type run_payload = {
  key : string;  (** engine cache key *)
  fingerprint : string;  (** {!Regmutex.Runner.fingerprint} *)
  cycles : int;
  instructions : int;
  theoretical_occupancy : float;
  achieved_occupancy : float;
  warm : bool;  (** answered from cache without touching a worker *)
}

type response =
  | Ok_ping
  | Ok_run of run_payload
  | Ok_trace of { events : int; trace : string }
  | Ok_suite of { output : string }
  | Ok_fuzz of {
      tested : int;
      failures : int;
      injected : int;
      caught : int;
      output : string;
    }
  | Ok_metrics of string
  | Ok_stats of (string * float) list
  | Ok_logs of { lines : string list; dropped : int }
      (** oldest first; [dropped] counts ring-evicted records since start *)
  | Ok_compact of { files : int; bytes : int }
  | Ok_shutdown
  | Busy
  | Error of { code : string; message : string }

val run_request :
  ?half:bool ->
  ?es_override:int ->
  ?variant:string ->
  ?quick:bool ->
  ?grid_scale:float ->
  workload:string ->
  technique:string ->
  unit ->
  run_request

(** Rendered frames are single lines without the trailing newline. *)
val encode_request : int -> request -> string

val decode_request : string -> (int * request, string) result

val encode_response : int -> response -> string

val decode_response : string -> (int * response, string) result

(** Human-readable request-type name ([run], [suite], ...) — the
    daemon's per-type metric label. *)
val request_type : request -> string
