module P = Protocol

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
  (* Responses read while waiting for a different id (one connection may
     interleave requests). *)
  pending : (int, P.response) Hashtbl.t;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    next_id = 1;
    pending = Hashtbl.create 4;
  }

let connect_retry ?(attempts = 50) ?(delay = 0.1) path =
  let rec go n =
    match connect path with
    | t -> t
    | exception (Unix.Unix_error _ | Sys_error _) when n > 1 ->
        Unix.sleepf delay;
        go (n - 1)
    | exception _ ->
        failwith (Printf.sprintf "cannot connect to daemon at %s" path)
  in
  go (max 1 attempts)

let close t =
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let request t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  output_string t.oc (P.encode_request id req);
  output_char t.oc '\n';
  flush t.oc;
  let rec await () =
    match Hashtbl.find_opt t.pending id with
    | Some resp ->
        Hashtbl.remove t.pending id;
        resp
    | None -> (
        match input_line t.ic with
        | exception End_of_file -> failwith "daemon closed the connection"
        | line -> (
            match P.decode_response line with
            | Result.Error msg -> failwith ("bad response frame: " ^ msg)
            | Ok (rid, resp) ->
                if rid = id then resp
                else begin
                  Hashtbl.replace t.pending rid resp;
                  await ()
                end))
  in
  await ()

let request_retry ?(attempts = 200) ?(delay = 0.05) t req =
  let rec go n =
    match request t req with
    | P.Busy when n > 1 ->
        Unix.sleepf delay;
        go (n - 1)
    | resp -> resp
  in
  go (max 1 attempts)
