module Engine = Experiments.Engine
module Result_store = Experiments.Result_store
module Exp_config = Experiments.Exp_config
module Suite = Experiments.Suite
module Metrics = Telemetry.Metrics
module Log = Telemetry.Log
module P = Protocol

type config = {
  socket_path : string;
  jobs : int;
  max_queue : int;
  cache_dir : string option;
  store_limit_bytes : int option;
  verbose : bool;
  log_level : Log.level;
  log_file : string option;
  trace_dir : string option;
  slow_ms : float;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = Engine.auto_jobs ();
    max_queue = 64;
    cache_dir = Some "_results";
    store_limit_bytes = None;
    verbose = false;
    log_level = Log.Info;
    log_file = None;
    trace_dir = Some "_flight";
    slow_ms = 500.;
  }

(* --- daemon metrics ---------------------------------------------------- *)

let request_types =
  [ "ping"; "run"; "trace"; "suite"; "fuzz"; "metrics"; "stats"; "logs";
    "compact"; "shutdown" ]

let latency_buckets = [| 10; 100; 1_000; 10_000; 100_000; 1_000_000; 10_000_000 |]

(* [Result_store.version_tag] is [v<schema>-<git-describe>]; split at the
   first dash into the two build_info labels. *)
let build_labels () =
  let tag = Result_store.version_tag () in
  match String.index_opt tag '-' with
  | Some i ->
      [ ("schema", String.sub tag 0 i);
        ("git", String.sub tag (i + 1) (String.length tag - i - 1)) ]
  | None -> [ ("schema", tag); ("git", "unknown") ]

type daemon_metrics = {
  registry : Metrics.t;
  by_type : (string * Metrics.counter) list;
  by_type_latency : (string * Metrics.histogram) list;
  requests : Metrics.counter;
  warm_hits : Metrics.counter;
  computes : Metrics.counter;
  coalesced : Metrics.counter;
  busy : Metrics.counter;
  errors : Metrics.counter;
  inflight : Metrics.gauge;
  queue_depth : Metrics.gauge;
  clients : Metrics.gauge;
  uptime : Metrics.gauge;
  latency : Metrics.histogram;
}

let make_metrics () =
  let registry = Metrics.create () in
  let counter name help = Metrics.counter ~help registry name in
  let build_info =
    Metrics.gauge ~help:"Constant 1; build identity in the labels"
      ~labels:(build_labels ()) registry "regmutex_build_info"
  in
  Metrics.set build_info 1.;
  {
    registry;
    by_type =
      List.map
        (fun t ->
          ( t,
            counter
              (Printf.sprintf "regmutex_serve_requests_%s_total" t)
              (Printf.sprintf "Requests of type %s" t) ))
        request_types;
    by_type_latency =
      List.map
        (fun t ->
          ( t,
            Metrics.histogram
              ~help:"Request latency by request type, microseconds"
              ~labels:[ ("type", t) ] ~buckets:latency_buckets registry
              "regmutex_serve_request_type_us" ))
        request_types;
    requests = counter "regmutex_serve_requests_total" "All requests received";
    warm_hits =
      counter "regmutex_serve_cache_hits_total"
        "Run requests answered from a cache layer without a worker";
    computes =
      counter "regmutex_serve_computations_total"
        "Jobs actually enqueued on the worker pool";
    coalesced =
      counter "regmutex_serve_coalesced_total"
        "Requests that joined an identical in-flight job (single-flight)";
    busy =
      counter "regmutex_serve_busy_total"
        "Requests refused because the job queue was full";
    errors = counter "regmutex_serve_errors_total" "Error responses sent";
    inflight =
      Metrics.gauge ~help:"Distinct jobs currently queued or running" registry
        "regmutex_serve_inflight_jobs";
    queue_depth =
      Metrics.gauge ~help:"Waiters across all queued and running jobs" registry
        "regmutex_serve_queue_depth";
    clients =
      Metrics.gauge ~help:"Connected clients" registry
        "regmutex_serve_clients";
    uptime =
      Metrics.gauge ~help:"Seconds since the daemon started" registry
        "regmutex_uptime_seconds";
    latency =
      Metrics.histogram
        ~help:"Request latency, receipt to response enqueue, microseconds"
        ~buckets:latency_buckets registry "regmutex_serve_request_us";
  }

(* --- stdout capture (suite jobs render through Printf/Format) ---------- *)

(* fd 1 is process-global, so captures are serialized; the simulator
   itself never prints, so only concurrent suite jobs contend here. *)
let capture_lock = Mutex.create ()

let capture_stdout f =
  Mutex.lock capture_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock capture_lock)
    (fun () ->
      Format.print_flush ();
      flush stdout;
      let tmp = Filename.temp_file "regmutex-serve" ".out" in
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
      let saved = Unix.dup Unix.stdout in
      Unix.dup2 fd Unix.stdout;
      Unix.close fd;
      let restore () =
        Format.print_flush ();
        flush stdout;
        Unix.dup2 saved Unix.stdout;
        Unix.close saved
      in
      let result =
        match f () with
        | r -> Ok r
        | exception e ->
            restore ();
            (try Sys.remove tmp with Sys_error _ -> ());
            raise e
      in
      restore ();
      let ic = open_in_bin tmp in
      let out =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (try Sys.remove tmp with Sys_error _ -> ());
      match result with Ok r -> (r, out) | Error _ -> assert false)

(* --- request resolution ------------------------------------------------ *)

let technique_of_string = function
  | "baseline" -> Some Regmutex.Technique.Baseline
  | "regmutex" -> Some Regmutex.Technique.Regmutex
  | "paired" | "regmutex-paired" -> Some Regmutex.Technique.Regmutex_paired
  | "owf" -> Some Regmutex.Technique.Owf
  | "rfv" -> Some Regmutex.Technique.Rfv
  | _ -> None

(* Everything a handler might need from a run request: the abstract
   engine cell for the cache machinery, plus its ingredients for paths
   that simulate outside the engine (trace recording). *)
type resolved = {
  r_cfg : Exp_config.t;
  r_cell : Engine.cell;
  r_arch : Gpu_uarch.Arch_config.t;
  r_technique : Regmutex.Technique.t;
  r_spec : Workloads.Spec.t;
  r_es : int option;
}

let resolve_run (r : P.run_request) =
  match Workloads.Registry.find r.P.workload with
  | exception Not_found ->
      Result.Error
        ( "unknown-workload",
          Printf.sprintf "unknown workload %S (try: %s)" r.P.workload
            (String.concat ", " Workloads.Registry.names) )
  | spec -> (
      match technique_of_string r.P.technique with
      | None ->
          Result.Error
            ( "unknown-technique",
              Printf.sprintf
                "unknown technique %S (baseline | regmutex | paired | owf | \
                 rfv)"
                r.P.technique )
      | Some technique ->
          let base = if r.P.quick then Exp_config.quick else Exp_config.default in
          let cfg =
            match r.P.grid_scale with
            | None -> base
            | Some s -> { base with Exp_config.grid_scale = s }
          in
          let arch =
            if r.P.half then cfg.Exp_config.half_arch else cfg.Exp_config.arch
          in
          Ok
            {
              r_cfg = cfg;
              r_cell =
                Engine.cell ?es_override:r.P.es_override ~variant:r.P.variant
                  ~arch technique spec;
              r_arch = arch;
              r_technique = technique;
              r_spec = spec;
              r_es = r.P.es_override;
            })

let payload_of_run ~key ~warm (run : Regmutex.Runner.run) =
  {
    P.key;
    fingerprint = Regmutex.Runner.fingerprint run;
    cycles = run.Regmutex.Runner.cycles;
    instructions = run.Regmutex.Runner.instructions;
    theoretical_occupancy = run.Regmutex.Runner.theoretical_occupancy;
    achieved_occupancy = run.Regmutex.Runner.achieved_occupancy;
    warm;
  }

(* --- server state ------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  inbuf : Buffer.t;
  mutable outbuf : string;
  mutable alive : bool;
}

type waiter = {
  w_cid : int;
  w_id : int;
  w_t0 : float;
  w_type : string;  (** request-type metric label *)
  w_rt : Reqtrace.t option;  (** per-request trace, when flight is on *)
}

type job = {
  j_key : string;  (** single-flight identity *)
  j_sink : Telemetry.Sink.t option;
      (** the worker's trace sink, shared by every coalesced waiter *)
  mutable j_started : float;  (** wall clock, set by the worker; 0 = not yet *)
  mutable j_finished : float;
  mutable j_waiters : waiter list;  (** newest first *)
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  pool : Engine.Pool.t;
  m : daemon_metrics;
  logger : Log.t;
  conns : (int, conn) Hashtbl.t;
  jobs : (string, job) Hashtbl.t;
  completions : (string * P.response) Queue.t;
  comp_lock : Mutex.t;
  mutable next_cid : int;
  mutable next_req : int;  (** daemon-wide request sequence *)
  mutable flight_written : int;
  mutable stopping : bool;
  started_at : float;
}

let counter_for t ty =
  match List.assoc_opt ty t.m.by_type with
  | Some c -> c
  | None -> t.m.requests

(* --- writing ----------------------------------------------------------- *)

let flush_out conn =
  if conn.alive && String.length conn.outbuf > 0 then begin
    let b = Bytes.unsafe_of_string conn.outbuf in
    match Unix.write conn.fd b 0 (Bytes.length b) with
    | n ->
        conn.outbuf <-
          String.sub conn.outbuf n (String.length conn.outbuf - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> conn.alive <- false
  end

let send t conn id resp =
  (match resp with
  | P.Error _ -> Metrics.inc t.m.errors 1
  | P.Busy -> Metrics.inc t.m.busy 1
  | _ -> ());
  conn.outbuf <- conn.outbuf ^ P.encode_response id resp ^ "\n";
  flush_out conn

let observe_latency t ty t0 =
  let us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  Metrics.observe t.m.latency us;
  match List.assoc_opt ty t.m.by_type_latency with
  | Some h -> Metrics.observe h us
  | None -> ()

(* --- flight recorder --------------------------------------------------- *)

(* Hard cap on trace files per daemon lifetime: a pathological workload
   (every request slow) must not fill the disk. *)
let flight_cap = 32

let write_flight t rt =
  match t.config.trace_dir with
  | None -> ()
  | Some _ when t.flight_written >= flight_cap -> ()
  | Some dir -> (
      (try
         if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
       with Unix.Unix_error _ -> ());
      let path =
        Filename.concat dir
          (Printf.sprintf "req-%d-%s.trace.json" (Reqtrace.req rt)
             (Reqtrace.rtype rt))
      in
      try
        (* Write-then-rename: a tailing reader never sees a partial
           document under the final name. *)
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        output_string oc (Reqtrace.export rt);
        close_out oc;
        Sys.rename tmp path;
        t.flight_written <- t.flight_written + 1;
        Log.warn t.logger ~src:"serve" "slow request"
          [ Log.int "req" (Reqtrace.req rt);
            Log.str "type" (Reqtrace.rtype rt);
            Log.float "ms" (Reqtrace.elapsed_ms rt);
            Log.str "trace" path ]
      with Sys_error _ -> ())

(* --- job lifecycle ----------------------------------------------------- *)

let set_inflight t =
  Metrics.set t.m.inflight (float_of_int (Hashtbl.length t.jobs));
  let waiters =
    Hashtbl.fold (fun _ j acc -> acc + List.length j.j_waiters) t.jobs 0
  in
  Metrics.set t.m.queue_depth (float_of_int waiters)

let complete t key resp =
  Mutex.lock t.comp_lock;
  Queue.push (key, resp) t.completions;
  Mutex.unlock t.comp_lock;
  (* Wake the coordinator's select. *)
  ignore (try Unix.write t.pipe_w (Bytes.make 1 '!') 0 1 with Unix.Unix_error _ -> 0)

(* Enqueue [work] (runs on a pool worker, must not raise) under
   single-flight [key]; identical concurrent requests join the waiter
   list of the job already in flight (adopting its shared sink for their
   own request trace). Returns [false] when refused with [busy], so
   callers can undo per-request preparation (the run pin). *)
let enqueue t conn id ~rq ~rtype ~rt ~sink key work =
  match Hashtbl.find_opt t.jobs key with
  | Some job ->
      Metrics.inc t.m.coalesced 1;
      (match rt with
      | Some r ->
          Reqtrace.instant r "coalesce";
          Reqtrace.set_sink r job.j_sink
      | None -> ());
      Log.debug t.logger ~src:"serve" "coalesce"
        [ Log.int "req" rq; Log.str "key" key ];
      job.j_waiters <-
        { w_cid = conn.cid; w_id = id; w_t0 = Unix.gettimeofday ();
          w_type = rtype; w_rt = rt }
        :: job.j_waiters;
      set_inflight t;
      true
  | None ->
      if Hashtbl.length t.jobs >= t.config.max_queue then begin
        Log.warn t.logger ~src:"serve" "busy"
          [ Log.int "req" rq; Log.str "key" key;
            Log.int "inflight" (Hashtbl.length t.jobs) ];
        send t conn id P.Busy;
        false
      end
      else begin
        (match rt with Some r -> Reqtrace.set_sink r sink | None -> ());
        let job =
          {
            j_key = key;
            j_sink = sink;
            j_started = 0.;
            j_finished = 0.;
            j_waiters =
              [ { w_cid = conn.cid; w_id = id; w_t0 = Unix.gettimeofday ();
                  w_type = rtype; w_rt = rt } ];
          }
        in
        Hashtbl.replace t.jobs key job;
        set_inflight t;
        Metrics.inc t.m.computes 1;
        let logger = t.logger in
        (* The request id rides to the worker as ambient log context, so
           the worker's own lines carry it without further plumbing. *)
        Engine.Pool.submit
          ~ctx:[ Log.int "req" rq; Log.str "rtype" rtype ]
          t.pool
          (fun () ->
            job.j_started <- Unix.gettimeofday ();
            Log.debug logger ~src:"worker" "job start" [ Log.str "key" key ];
            let resp =
              try work ()
              with e ->
                P.Error
                  { code = "compute-failed"; message = Printexc.to_string e }
            in
            job.j_finished <- Unix.gettimeofday ();
            Log.debug logger ~src:"worker" "job done" [ Log.str "key" key ];
            complete t key resp);
        true
      end

let drain_completions t =
  let pending = ref [] in
  Mutex.lock t.comp_lock;
  Queue.iter (fun c -> pending := c :: !pending) t.completions;
  Queue.clear t.completions;
  Mutex.unlock t.comp_lock;
  List.iter
    (fun (key, resp) ->
      match Hashtbl.find_opt t.jobs key with
      | None -> ()
      | Some job ->
          Hashtbl.remove t.jobs key;
          set_inflight t;
          List.iter
            (fun w ->
              match Hashtbl.find_opt t.conns w.w_cid with
              | Some conn when conn.alive -> (
                  observe_latency t w.w_type w.w_t0;
                  match w.w_rt with
                  | None -> send t conn w.w_id resp
                  | Some rt ->
                      (* The worker stamped wall-clock start/finish; the
                         stamps are visible here because the completion
                         crossed the queue mutex. Coalesced waiters that
                         arrived after the start get a zero-length queue
                         span. *)
                      let queue_end =
                        if job.j_started > 0. then max w.w_t0 job.j_started
                        else Unix.gettimeofday ()
                      in
                      Reqtrace.span_between rt "queue" ~t_start:w.w_t0
                        ~t_end:queue_end;
                      if job.j_started > 0. && job.j_finished > 0. then
                        Reqtrace.span_between rt "compute"
                          ~t_start:(max w.w_t0 job.j_started)
                          ~t_end:job.j_finished;
                      let reply_t0 = Unix.gettimeofday () in
                      send t conn w.w_id resp;
                      Reqtrace.span rt "reply" ~since:reply_t0;
                      if Reqtrace.elapsed_ms rt >= t.config.slow_ms then
                        write_flight t rt)
              | _ -> () (* client went away; drop its share *))
            (List.rev job.j_waiters))
    (List.rev !pending)

(* --- request handlers -------------------------------------------------- *)

let stats_payload t =
  let c = Metrics.counter_value in
  let store = Result_store.stats () in
  P.Ok_stats
    [ ("uptime_s", Unix.gettimeofday () -. t.started_at);
      ("requests", float_of_int (c t.m.requests));
      ("cache_hits", float_of_int (c t.m.warm_hits));
      ("computations", float_of_int (c t.m.computes));
      ("coalesced", float_of_int (c t.m.coalesced));
      ("busy", float_of_int (c t.m.busy));
      ("errors", float_of_int (c t.m.errors));
      ("inflight", float_of_int (Hashtbl.length t.jobs));
      ("clients", float_of_int (Hashtbl.length t.conns));
      ("pool_workers", float_of_int (Engine.Pool.workers t.pool));
      ("store_entries", float_of_int store.Result_store.entries);
      ("store_bytes", float_of_int store.Result_store.bytes);
      ("store_evictions", float_of_int store.Result_store.evictions) ]

(* A request trace is only assembled when the flight recorder can use
   it; with [trace_dir = None] the whole layer costs one option test. *)
let reqtrace_for t ~rq rtype =
  match t.config.trace_dir with
  | None -> None
  | Some _ -> Some (Reqtrace.create ~req:rq ~rtype)

let handle_run t conn id ~rq ~t0 (r : P.run_request) =
  match resolve_run r with
  | Result.Error (code, message) -> send t conn id (P.Error { code; message })
  | Ok { r_cfg = cfg; r_cell = cell; _ } -> (
      let key = Engine.key_of_cell cfg cell in
      match Engine.cached cfg cell with
      | Some run ->
          (* Warm path: answered inline on the coordinator, no worker. *)
          Metrics.inc t.m.warm_hits 1;
          Log.debug t.logger ~src:"serve" "warm hit"
            [ Log.int "req" rq; Log.str "key" key ];
          observe_latency t "run" t0;
          send t conn id (P.Ok_run (payload_of_run ~key ~warm:true run))
      | None ->
          let jkey = "run:" ^ key in
          let rt = reqtrace_for t ~rq "run" in
          (* A cold compute gets its own sink when tracing, so the
             simulation's SM tracks land in this request's trace. *)
          let sink =
            match rt with
            | None -> None
            | Some _ -> Some (Telemetry.Sink.create ())
          in
          (* Pin for the whole flight so the LRU can never evict the
             entry between its store and the last waiter's response. *)
          let pinned = not (Hashtbl.mem t.jobs jkey) in
          if pinned then Result_store.pin key;
          let accepted =
            enqueue t conn id ~rq ~rtype:"run" ~rt ~sink jkey (fun () ->
                match Engine.compute ?telemetry:sink cfg cell with
                | run ->
                    Engine.insert cfg cell run;
                    Result_store.unpin key;
                    P.Ok_run (payload_of_run ~key ~warm:false run)
                | exception e ->
                    Result_store.unpin key;
                    P.Error
                      { code = "compute-failed"; message = Printexc.to_string e })
          in
          if (not accepted) && pinned then Result_store.unpin key)

let handle_trace t conn id ~rq (r : P.run_request) =
  match resolve_run r with
  | Result.Error (code, message) -> send t conn id (P.Error { code; message })
  | Ok res ->
      let key = Engine.key_of_cell res.r_cfg res.r_cell in
      let rt = reqtrace_for t ~rq "trace" in
      let sink = Telemetry.Sink.create () in
      ignore
        (enqueue t conn id ~rq ~rtype:"trace" ~rt ~sink:(Some sink)
           ("trace:" ^ key) (fun () ->
             let options =
               { Regmutex.Technique.default_options with es_override = res.r_es }
             in
             let kernel = Exp_config.kernel_of res.r_cfg res.r_spec in
             let _run =
               Regmutex.Runner.execute ~options ~telemetry:sink res.r_arch
                 res.r_technique kernel
             in
             let trace = sink.Telemetry.Sink.trace in
             P.Ok_trace
               {
                 events = Telemetry.Trace.length trace;
                 trace = Format.asprintf "%a" Telemetry.Trace.export_chrome trace;
               }))

let handle_suite t conn id ~rq ~entries ~quick =
  let cfg = if quick then Exp_config.quick else Exp_config.default in
  let resolved =
    match entries with
    | [] -> Ok Suite.all
    | names ->
        List.fold_right
          (fun n acc ->
            Result.bind acc (fun es ->
                match Suite.find n with
                | Some e -> Ok (e :: es)
                | None ->
                    Result.Error
                      (Printf.sprintf "unknown experiment %S (available: %s)" n
                         (String.concat ", " Suite.names))))
          names (Ok [])
  in
  match resolved with
  | Result.Error message ->
      send t conn id (P.Error { code = "unknown-experiment"; message })
  | Ok entries ->
      let jkey =
        Printf.sprintf "suite:%b:%s" quick
          (String.concat "," (List.map (fun e -> e.Suite.name) entries))
      in
      ignore
        (enqueue t conn id ~rq ~rtype:"suite" ~rt:(reqtrace_for t ~rq "suite")
           ~sink:None jkey (fun () ->
             let (), output = capture_stdout (fun () -> Suite.run cfg entries) in
             P.Ok_suite { output }))

let handle_fuzz t conn id ~rq ~n_seeds ~seed0 ~inject ~do_shrink =
  let fault =
    match inject with
    | None -> Ok None
    | Some s -> (
        match Fuzz.Oracle.fault_of_string s with
        | Ok f -> Ok (Some f)
        | Result.Error m -> Result.Error m)
  in
  match fault with
  | Result.Error message ->
      send t conn id (P.Error { code = "unknown-fault"; message })
  | Ok inject ->
      let jkey =
        Printf.sprintf "fuzz:%d:%d:%s:%b" n_seeds seed0
          (match inject with
          | Some f -> Fuzz.Oracle.fault_name f
          | None -> "-")
          do_shrink
      in
      let jobs = max 1 t.config.jobs in
      ignore
        (enqueue t conn id ~rq ~rtype:"fuzz" ~rt:(reqtrace_for t ~rq "fuzz")
           ~sink:None jkey (fun () ->
             let buf = Buffer.create 1024 in
             let ppf = Format.formatter_of_buffer buf in
             let config =
               { Fuzz.Driver.n_seeds; seed0; jobs; dir = None; inject;
                 do_shrink }
             in
             let summary = Fuzz.Driver.run ppf config in
             Format.pp_print_flush ppf ();
             P.Ok_fuzz
               {
                 tested = summary.Fuzz.Driver.tested;
                 failures = List.length summary.Fuzz.Driver.failed;
                 injected = summary.Fuzz.Driver.injected_cases;
                 caught = summary.Fuzz.Driver.caught;
                 output = Buffer.contents buf;
               }))

let handle_request t conn id req =
  Metrics.inc t.m.requests 1;
  let ty = P.request_type req in
  Metrics.inc (counter_for t ty) 1;
  let rq = t.next_req in
  t.next_req <- rq + 1;
  Log.debug t.logger ~src:"serve" "request"
    [ Log.int "req" rq; Log.int "conn" conn.cid; Log.int "id" id;
      Log.str "type" ty ];
  let t0 = Unix.gettimeofday () in
  let inline resp =
    observe_latency t ty t0;
    send t conn id resp
  in
  if t.stopping && req <> P.Ping && req <> P.Metrics && req <> P.Stats then
    inline
      (P.Error { code = "shutting-down"; message = "daemon is shutting down" })
  else
    match req with
    | P.Ping -> inline P.Ok_ping
    | P.Metrics ->
        Metrics.set t.m.uptime (Unix.gettimeofday () -. t.started_at);
        inline
          (P.Ok_metrics (Format.asprintf "%a" Metrics.pp_prometheus t.m.registry))
    | P.Stats -> inline (stats_payload t)
    | P.Logs { max_lines } ->
        inline
          (P.Ok_logs
             {
               lines = Log.tail ~limit:(max 1 max_lines) t.logger;
               dropped = Log.dropped t.logger;
             })
    | P.Compact ->
        let files, bytes = Result_store.compact () in
        inline (P.Ok_compact { files; bytes })
    | P.Shutdown ->
        t.stopping <- true;
        Log.info t.logger ~src:"serve" "shutdown accepted" [ Log.int "req" rq ];
        inline P.Ok_shutdown
    | P.Run r -> handle_run t conn id ~rq ~t0 r
    | P.Trace r -> handle_trace t conn id ~rq r
    | P.Suite { entries; quick } -> handle_suite t conn id ~rq ~entries ~quick
    | P.Fuzz { n_seeds; seed0; inject; do_shrink } ->
        handle_fuzz t conn id ~rq ~n_seeds ~seed0 ~inject ~do_shrink

let handle_line t conn line =
  let line = String.trim line in
  if line <> "" then
    match P.decode_request line with
    | Ok (id, req) -> handle_request t conn id req
    | Result.Error msg ->
        Metrics.inc t.m.requests 1;
        Metrics.inc t.m.errors 1;
        Log.warn t.logger ~src:"serve" "bad request"
          [ Log.int "conn" conn.cid; Log.str "error" msg ];
        send t conn 0 (P.Error { code = "bad-request"; message = msg })

(* --- connection I/O ---------------------------------------------------- *)

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove t.conns conn.cid;
    Metrics.set t.m.clients (float_of_int (Hashtbl.length t.conns));
    Log.debug t.logger ~src:"serve" "client disconnected"
      [ Log.int "conn" conn.cid ]
  end

let read_conn t conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn t conn
  | n ->
      Buffer.add_subbytes conn.inbuf buf 0 n;
      (* Split complete lines out of the buffer. *)
      let data = Buffer.contents conn.inbuf in
      let rec go start =
        match String.index_from_opt data start '\n' with
        | Some i ->
            handle_line t conn (String.sub data start (i - start));
            go (i + 1)
        | None ->
            Buffer.clear conn.inbuf;
            Buffer.add_substring conn.inbuf data start
              (String.length data - start)
      in
      go 0
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> close_conn t conn

let accept_conn t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      if t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        Unix.set_nonblock fd;
        let cid = t.next_cid in
        t.next_cid <- cid + 1;
        Hashtbl.replace t.conns cid
          { fd; cid; inbuf = Buffer.create 256; outbuf = ""; alive = true };
        Metrics.set t.m.clients (float_of_int (Hashtbl.length t.conns));
        Log.debug t.logger ~src:"serve" "client connected" [ Log.int "conn" cid ]
      end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()

(* --- main loop --------------------------------------------------------- *)

let run config =
  Engine.set_cache_dir config.cache_dir;
  Result_store.set_limit_bytes config.store_limit_bytes;
  let workers = max 1 config.jobs in
  let pool = Engine.shared_pool ~workers in
  let logger = Log.create ~min_level:config.log_level () in
  if config.verbose then begin
    Log.set_stderr logger true;
    Log.set_min_level logger Log.Debug
  end;
  (match config.log_file with
  | Some path -> Log.open_file logger path
  | None -> ());
  (if Sys.file_exists config.socket_path then
     try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 64;
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  let t =
    {
      config;
      listen_fd;
      pipe_r;
      pipe_w;
      pool;
      m = make_metrics ();
      logger;
      conns = Hashtbl.create 16;
      jobs = Hashtbl.create 16;
      completions = Queue.create ();
      comp_lock = Mutex.create ();
      next_cid = 1;
      next_req = 1;
      flight_written = 0;
      stopping = false;
      started_at = Unix.gettimeofday ();
    }
  in
  Log.info t.logger ~src:"serve" "listening"
    [ Log.str "socket" config.socket_path; Log.int "workers" workers;
      Log.int "queue_depth" config.max_queue;
      Log.str "store"
        (match config.cache_dir with Some d -> d | None -> "off");
      Log.str "flight"
        (match config.trace_dir with Some d -> d | None -> "off") ];
  let finished () = t.stopping && Hashtbl.length t.jobs = 0 in
  while not (finished ()) do
    let writers =
      Hashtbl.fold
        (fun _ c acc -> if c.outbuf <> "" then c.fd :: acc else acc)
        t.conns []
    in
    let readers =
      t.listen_fd :: t.pipe_r
      :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) t.conns []
    in
    match Unix.select readers writers [] 0.5 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | rs, ws, _ ->
        if List.mem t.pipe_r rs then begin
          let b = Bytes.create 512 in
          (try ignore (Unix.read t.pipe_r b 0 512)
           with Unix.Unix_error _ -> ())
        end;
        (* Completions may be pending even without a pipe byte (the
           write can fail when the pipe is full); always drain. *)
        drain_completions t;
        if List.mem t.listen_fd rs then accept_conn t;
        Hashtbl.iter
          (fun _ c -> if List.mem c.fd ws then flush_out c)
          (Hashtbl.copy t.conns);
        Hashtbl.iter
          (fun _ c -> if List.mem c.fd rs then read_conn t c)
          (Hashtbl.copy t.conns);
        (* Reap connections whose write side failed. *)
        Hashtbl.iter
          (fun _ c -> if not c.alive then close_conn t c)
          (Hashtbl.copy t.conns)
  done;
  (* Drained: flush remaining output, close everything, remove socket. *)
  Hashtbl.iter
    (fun _ c ->
      let deadline = Unix.gettimeofday () +. 1.0 in
      while c.outbuf <> "" && c.alive && Unix.gettimeofday () < deadline do
        (match Unix.select [] [ c.fd ] [] 0.1 with
        | _, [ _ ], _ -> flush_out c
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      done;
      (try Unix.close c.fd with Unix.Unix_error _ -> ()))
    t.conns;
  Hashtbl.reset t.conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  Log.info t.logger ~src:"serve" "shut down"
    [ Log.float "uptime_s" (Unix.gettimeofday () -. t.started_at) ];
  Log.close_file t.logger
