module Engine = Experiments.Engine
module Result_store = Experiments.Result_store
module Exp_config = Experiments.Exp_config
module Suite = Experiments.Suite
module Metrics = Telemetry.Metrics
module P = Protocol

type config = {
  socket_path : string;
  jobs : int;
  max_queue : int;
  cache_dir : string option;
  store_limit_bytes : int option;
  verbose : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = Engine.auto_jobs ();
    max_queue = 64;
    cache_dir = Some "_results";
    store_limit_bytes = None;
    verbose = false;
  }

(* --- daemon metrics ---------------------------------------------------- *)

let request_types =
  [ "ping"; "run"; "trace"; "suite"; "fuzz"; "metrics"; "stats"; "compact";
    "shutdown" ]

type daemon_metrics = {
  registry : Metrics.t;
  by_type : (string * Metrics.counter) list;
  requests : Metrics.counter;
  warm_hits : Metrics.counter;
  computes : Metrics.counter;
  coalesced : Metrics.counter;
  busy : Metrics.counter;
  errors : Metrics.counter;
  inflight : Metrics.gauge;
  clients : Metrics.gauge;
  latency : Metrics.histogram;
}

let make_metrics () =
  let registry = Metrics.create () in
  let counter name help = Metrics.counter ~help registry name in
  {
    registry;
    by_type =
      List.map
        (fun t ->
          ( t,
            counter
              (Printf.sprintf "regmutex_serve_requests_%s_total" t)
              (Printf.sprintf "Requests of type %s" t) ))
        request_types;
    requests = counter "regmutex_serve_requests_total" "All requests received";
    warm_hits =
      counter "regmutex_serve_cache_hits_total"
        "Run requests answered from a cache layer without a worker";
    computes =
      counter "regmutex_serve_computations_total"
        "Jobs actually enqueued on the worker pool";
    coalesced =
      counter "regmutex_serve_coalesced_total"
        "Requests that joined an identical in-flight job (single-flight)";
    busy =
      counter "regmutex_serve_busy_total"
        "Requests refused because the job queue was full";
    errors = counter "regmutex_serve_errors_total" "Error responses sent";
    inflight =
      Metrics.gauge ~help:"Distinct jobs currently queued or running" registry
        "regmutex_serve_inflight_jobs";
    clients =
      Metrics.gauge ~help:"Connected clients" registry
        "regmutex_serve_clients";
    latency =
      Metrics.histogram
        ~help:"Request latency, receipt to response enqueue, microseconds"
        ~buckets:[| 10; 100; 1_000; 10_000; 100_000; 1_000_000; 10_000_000 |]
        registry "regmutex_serve_request_us";
  }

(* --- stdout capture (suite jobs render through Printf/Format) ---------- *)

(* fd 1 is process-global, so captures are serialized; the simulator
   itself never prints, so only concurrent suite jobs contend here. *)
let capture_lock = Mutex.create ()

let capture_stdout f =
  Mutex.lock capture_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock capture_lock)
    (fun () ->
      Format.print_flush ();
      flush stdout;
      let tmp = Filename.temp_file "regmutex-serve" ".out" in
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
      let saved = Unix.dup Unix.stdout in
      Unix.dup2 fd Unix.stdout;
      Unix.close fd;
      let restore () =
        Format.print_flush ();
        flush stdout;
        Unix.dup2 saved Unix.stdout;
        Unix.close saved
      in
      let result =
        match f () with
        | r -> Ok r
        | exception e ->
            restore ();
            (try Sys.remove tmp with Sys_error _ -> ());
            raise e
      in
      restore ();
      let ic = open_in_bin tmp in
      let out =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (try Sys.remove tmp with Sys_error _ -> ());
      match result with Ok r -> (r, out) | Error _ -> assert false)

(* --- request resolution ------------------------------------------------ *)

let technique_of_string = function
  | "baseline" -> Some Regmutex.Technique.Baseline
  | "regmutex" -> Some Regmutex.Technique.Regmutex
  | "paired" | "regmutex-paired" -> Some Regmutex.Technique.Regmutex_paired
  | "owf" -> Some Regmutex.Technique.Owf
  | "rfv" -> Some Regmutex.Technique.Rfv
  | _ -> None

(* Everything a handler might need from a run request: the abstract
   engine cell for the cache machinery, plus its ingredients for paths
   that simulate outside the engine (trace recording). *)
type resolved = {
  r_cfg : Exp_config.t;
  r_cell : Engine.cell;
  r_arch : Gpu_uarch.Arch_config.t;
  r_technique : Regmutex.Technique.t;
  r_spec : Workloads.Spec.t;
  r_es : int option;
}

let resolve_run (r : P.run_request) =
  match Workloads.Registry.find r.P.workload with
  | exception Not_found ->
      Result.Error
        ( "unknown-workload",
          Printf.sprintf "unknown workload %S (try: %s)" r.P.workload
            (String.concat ", " Workloads.Registry.names) )
  | spec -> (
      match technique_of_string r.P.technique with
      | None ->
          Result.Error
            ( "unknown-technique",
              Printf.sprintf
                "unknown technique %S (baseline | regmutex | paired | owf | \
                 rfv)"
                r.P.technique )
      | Some technique ->
          let base = if r.P.quick then Exp_config.quick else Exp_config.default in
          let cfg =
            match r.P.grid_scale with
            | None -> base
            | Some s -> { base with Exp_config.grid_scale = s }
          in
          let arch =
            if r.P.half then cfg.Exp_config.half_arch else cfg.Exp_config.arch
          in
          Ok
            {
              r_cfg = cfg;
              r_cell =
                Engine.cell ?es_override:r.P.es_override ~variant:r.P.variant
                  ~arch technique spec;
              r_arch = arch;
              r_technique = technique;
              r_spec = spec;
              r_es = r.P.es_override;
            })

let payload_of_run ~key ~warm (run : Regmutex.Runner.run) =
  {
    P.key;
    fingerprint = Regmutex.Runner.fingerprint run;
    cycles = run.Regmutex.Runner.cycles;
    instructions = run.Regmutex.Runner.instructions;
    theoretical_occupancy = run.Regmutex.Runner.theoretical_occupancy;
    achieved_occupancy = run.Regmutex.Runner.achieved_occupancy;
    warm;
  }

(* --- server state ------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  inbuf : Buffer.t;
  mutable outbuf : string;
  mutable alive : bool;
}

type waiter = { w_cid : int; w_id : int; w_t0 : float }

type job = {
  j_key : string;  (** single-flight identity *)
  mutable j_waiters : waiter list;  (** newest first *)
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  pool : Engine.Pool.t;
  m : daemon_metrics;
  conns : (int, conn) Hashtbl.t;
  jobs : (string, job) Hashtbl.t;
  completions : (string * P.response) Queue.t;
  comp_lock : Mutex.t;
  mutable next_cid : int;
  mutable stopping : bool;
  started_at : float;
}

let log t fmt =
  if t.config.verbose then
    Printf.eprintf ("[serve] " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let counter_for t ty =
  match List.assoc_opt ty t.m.by_type with
  | Some c -> c
  | None -> t.m.requests

(* --- writing ----------------------------------------------------------- *)

let flush_out conn =
  if conn.alive && String.length conn.outbuf > 0 then begin
    let b = Bytes.unsafe_of_string conn.outbuf in
    match Unix.write conn.fd b 0 (Bytes.length b) with
    | n ->
        conn.outbuf <-
          String.sub conn.outbuf n (String.length conn.outbuf - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> conn.alive <- false
  end

let send t conn id resp =
  (match resp with
  | P.Error _ -> Metrics.inc t.m.errors 1
  | P.Busy -> Metrics.inc t.m.busy 1
  | _ -> ());
  conn.outbuf <- conn.outbuf ^ P.encode_response id resp ^ "\n";
  flush_out conn

let observe_latency t t0 =
  Metrics.observe t.m.latency
    (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))

(* --- job lifecycle ----------------------------------------------------- *)

let set_inflight t = Metrics.set t.m.inflight (float_of_int (Hashtbl.length t.jobs))

let complete t key resp =
  Mutex.lock t.comp_lock;
  Queue.push (key, resp) t.completions;
  Mutex.unlock t.comp_lock;
  (* Wake the coordinator's select. *)
  ignore (try Unix.write t.pipe_w (Bytes.make 1 '!') 0 1 with Unix.Unix_error _ -> 0)

(* Enqueue [work] (runs on a pool worker, must not raise) under
   single-flight [key]; identical concurrent requests join the waiter
   list of the job already in flight. *)
let enqueue t conn id key work =
  match Hashtbl.find_opt t.jobs key with
  | Some job ->
      Metrics.inc t.m.coalesced 1;
      job.j_waiters <-
        { w_cid = conn.cid; w_id = id; w_t0 = Unix.gettimeofday () }
        :: job.j_waiters
  | None ->
      if Hashtbl.length t.jobs >= t.config.max_queue then
        send t conn id P.Busy
      else begin
        let job =
          {
            j_key = key;
            j_waiters =
              [ { w_cid = conn.cid; w_id = id; w_t0 = Unix.gettimeofday () } ];
          }
        in
        Hashtbl.replace t.jobs key job;
        set_inflight t;
        Metrics.inc t.m.computes 1;
        Engine.Pool.submit t.pool (fun () ->
            let resp =
              try work ()
              with e ->
                P.Error
                  { code = "compute-failed"; message = Printexc.to_string e }
            in
            complete t key resp)
      end

let drain_completions t =
  let pending = ref [] in
  Mutex.lock t.comp_lock;
  Queue.iter (fun c -> pending := c :: !pending) t.completions;
  Queue.clear t.completions;
  Mutex.unlock t.comp_lock;
  List.iter
    (fun (key, resp) ->
      match Hashtbl.find_opt t.jobs key with
      | None -> ()
      | Some job ->
          Hashtbl.remove t.jobs key;
          set_inflight t;
          List.iter
            (fun w ->
              match Hashtbl.find_opt t.conns w.w_cid with
              | Some conn when conn.alive ->
                  observe_latency t w.w_t0;
                  send t conn w.w_id resp
              | _ -> () (* client went away; drop its share *))
            (List.rev job.j_waiters))
    (List.rev !pending)

(* --- request handlers -------------------------------------------------- *)

let stats_payload t =
  let c = Metrics.counter_value in
  let store = Result_store.stats () in
  P.Ok_stats
    [ ("uptime_s", Unix.gettimeofday () -. t.started_at);
      ("requests", float_of_int (c t.m.requests));
      ("cache_hits", float_of_int (c t.m.warm_hits));
      ("computations", float_of_int (c t.m.computes));
      ("coalesced", float_of_int (c t.m.coalesced));
      ("busy", float_of_int (c t.m.busy));
      ("errors", float_of_int (c t.m.errors));
      ("inflight", float_of_int (Hashtbl.length t.jobs));
      ("clients", float_of_int (Hashtbl.length t.conns));
      ("pool_workers", float_of_int (Engine.Pool.workers t.pool));
      ("store_entries", float_of_int store.Result_store.entries);
      ("store_bytes", float_of_int store.Result_store.bytes);
      ("store_evictions", float_of_int store.Result_store.evictions) ]

let handle_run t conn id (r : P.run_request) =
  match resolve_run r with
  | Result.Error (code, message) -> send t conn id (P.Error { code; message })
  | Ok { r_cfg = cfg; r_cell = cell; _ } -> (
      let key = Engine.key_of_cell cfg cell in
      match Engine.cached cfg cell with
      | Some run ->
          (* Warm path: answered inline on the coordinator, no worker. *)
          Metrics.inc t.m.warm_hits 1;
          send t conn id (P.Ok_run (payload_of_run ~key ~warm:true run))
      | None ->
          let jkey = "run:" ^ key in
          (* Pin for the whole flight so the LRU can never evict the
             entry between its store and the last waiter's response. *)
          if not (Hashtbl.mem t.jobs jkey) then Result_store.pin key;
          enqueue t conn id jkey (fun () ->
              match Engine.compute cfg cell with
              | run ->
                  Engine.insert cfg cell run;
                  Result_store.unpin key;
                  P.Ok_run (payload_of_run ~key ~warm:false run)
              | exception e ->
                  Result_store.unpin key;
                  P.Error
                    { code = "compute-failed"; message = Printexc.to_string e }))

let handle_trace t conn id (r : P.run_request) =
  match resolve_run r with
  | Result.Error (code, message) -> send t conn id (P.Error { code; message })
  | Ok res ->
      let key = Engine.key_of_cell res.r_cfg res.r_cell in
      enqueue t conn id ("trace:" ^ key) (fun () ->
          let options =
            { Regmutex.Technique.default_options with es_override = res.r_es }
          in
          let kernel = Exp_config.kernel_of res.r_cfg res.r_spec in
          let sink = Telemetry.Sink.create () in
          let _run =
            Regmutex.Runner.execute ~options ~telemetry:sink res.r_arch
              res.r_technique kernel
          in
          let trace = sink.Telemetry.Sink.trace in
          P.Ok_trace
            {
              events = Telemetry.Trace.length trace;
              trace = Format.asprintf "%a" Telemetry.Trace.export_chrome trace;
            })

let handle_suite t conn id ~entries ~quick =
  let cfg = if quick then Exp_config.quick else Exp_config.default in
  let resolved =
    match entries with
    | [] -> Ok Suite.all
    | names ->
        List.fold_right
          (fun n acc ->
            Result.bind acc (fun es ->
                match Suite.find n with
                | Some e -> Ok (e :: es)
                | None ->
                    Result.Error
                      (Printf.sprintf "unknown experiment %S (available: %s)" n
                         (String.concat ", " Suite.names))))
          names (Ok [])
  in
  match resolved with
  | Result.Error message ->
      send t conn id (P.Error { code = "unknown-experiment"; message })
  | Ok entries ->
      let jkey =
        Printf.sprintf "suite:%b:%s" quick
          (String.concat "," (List.map (fun e -> e.Suite.name) entries))
      in
      enqueue t conn id jkey (fun () ->
          let (), output = capture_stdout (fun () -> Suite.run cfg entries) in
          P.Ok_suite { output })

let handle_fuzz t conn id ~n_seeds ~seed0 ~inject ~do_shrink =
  let fault =
    match inject with
    | None -> Ok None
    | Some s -> (
        match Fuzz.Oracle.fault_of_string s with
        | Ok f -> Ok (Some f)
        | Result.Error m -> Result.Error m)
  in
  match fault with
  | Result.Error message ->
      send t conn id (P.Error { code = "unknown-fault"; message })
  | Ok inject ->
      let jkey =
        Printf.sprintf "fuzz:%d:%d:%s:%b" n_seeds seed0
          (match inject with
          | Some f -> Fuzz.Oracle.fault_name f
          | None -> "-")
          do_shrink
      in
      let jobs = max 1 t.config.jobs in
      enqueue t conn id jkey (fun () ->
          let buf = Buffer.create 1024 in
          let ppf = Format.formatter_of_buffer buf in
          let config =
            { Fuzz.Driver.n_seeds; seed0; jobs; dir = None; inject;
              do_shrink }
          in
          let summary = Fuzz.Driver.run ppf config in
          Format.pp_print_flush ppf ();
          P.Ok_fuzz
            {
              tested = summary.Fuzz.Driver.tested;
              failures = List.length summary.Fuzz.Driver.failed;
              injected = summary.Fuzz.Driver.injected_cases;
              caught = summary.Fuzz.Driver.caught;
              output = Buffer.contents buf;
            })

let handle_request t conn id req =
  Metrics.inc t.m.requests 1;
  Metrics.inc (counter_for t (P.request_type req)) 1;
  log t "c%d #%d %s" conn.cid id (P.request_type req);
  let t0 = Unix.gettimeofday () in
  let inline resp =
    observe_latency t t0;
    send t conn id resp
  in
  if t.stopping && req <> P.Ping && req <> P.Metrics && req <> P.Stats then
    inline
      (P.Error { code = "shutting-down"; message = "daemon is shutting down" })
  else
    match req with
    | P.Ping -> inline P.Ok_ping
    | P.Metrics ->
        inline
          (P.Ok_metrics (Format.asprintf "%a" Metrics.pp_prometheus t.m.registry))
    | P.Stats -> inline (stats_payload t)
    | P.Compact ->
        let files, bytes = Result_store.compact () in
        inline (P.Ok_compact { files; bytes })
    | P.Shutdown ->
        t.stopping <- true;
        inline P.Ok_shutdown
    | P.Run r -> handle_run t conn id r
    | P.Trace r -> handle_trace t conn id r
    | P.Suite { entries; quick } -> handle_suite t conn id ~entries ~quick
    | P.Fuzz { n_seeds; seed0; inject; do_shrink } ->
        handle_fuzz t conn id ~n_seeds ~seed0 ~inject ~do_shrink

let handle_line t conn line =
  let line = String.trim line in
  if line <> "" then
    match P.decode_request line with
    | Ok (id, req) -> handle_request t conn id req
    | Result.Error msg ->
        Metrics.inc t.m.requests 1;
        Metrics.inc t.m.errors 1;
        send t conn 0 (P.Error { code = "bad-request"; message = msg })

(* --- connection I/O ---------------------------------------------------- *)

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove t.conns conn.cid;
    Metrics.set t.m.clients (float_of_int (Hashtbl.length t.conns));
    log t "c%d disconnected" conn.cid
  end

let read_conn t conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn t conn
  | n ->
      Buffer.add_subbytes conn.inbuf buf 0 n;
      (* Split complete lines out of the buffer. *)
      let data = Buffer.contents conn.inbuf in
      let rec go start =
        match String.index_from_opt data start '\n' with
        | Some i ->
            handle_line t conn (String.sub data start (i - start));
            go (i + 1)
        | None ->
            Buffer.clear conn.inbuf;
            Buffer.add_substring conn.inbuf data start
              (String.length data - start)
      in
      go 0
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> close_conn t conn

let accept_conn t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      if t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        Unix.set_nonblock fd;
        let cid = t.next_cid in
        t.next_cid <- cid + 1;
        Hashtbl.replace t.conns cid
          { fd; cid; inbuf = Buffer.create 256; outbuf = ""; alive = true };
        Metrics.set t.m.clients (float_of_int (Hashtbl.length t.conns));
        log t "c%d connected" cid
      end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()

(* --- main loop --------------------------------------------------------- *)

let run config =
  Engine.set_cache_dir config.cache_dir;
  Result_store.set_limit_bytes config.store_limit_bytes;
  let workers = max 1 config.jobs in
  let pool = Engine.shared_pool ~workers in
  (if Sys.file_exists config.socket_path then
     try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 64;
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  let t =
    {
      config;
      listen_fd;
      pipe_r;
      pipe_w;
      pool;
      m = make_metrics ();
      conns = Hashtbl.create 16;
      jobs = Hashtbl.create 16;
      completions = Queue.create ();
      comp_lock = Mutex.create ();
      next_cid = 1;
      stopping = false;
      started_at = Unix.gettimeofday ();
    }
  in
  log t "listening on %s (%d worker%s, queue depth %d, store %s)"
    config.socket_path workers
    (if workers = 1 then "" else "s")
    config.max_queue
    (match config.cache_dir with Some d -> d | None -> "off");
  let finished () = t.stopping && Hashtbl.length t.jobs = 0 in
  while not (finished ()) do
    let writers =
      Hashtbl.fold
        (fun _ c acc -> if c.outbuf <> "" then c.fd :: acc else acc)
        t.conns []
    in
    let readers =
      t.listen_fd :: t.pipe_r
      :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) t.conns []
    in
    match Unix.select readers writers [] 0.5 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | rs, ws, _ ->
        if List.mem t.pipe_r rs then begin
          let b = Bytes.create 512 in
          (try ignore (Unix.read t.pipe_r b 0 512)
           with Unix.Unix_error _ -> ())
        end;
        (* Completions may be pending even without a pipe byte (the
           write can fail when the pipe is full); always drain. *)
        drain_completions t;
        if List.mem t.listen_fd rs then accept_conn t;
        Hashtbl.iter
          (fun _ c -> if List.mem c.fd ws then flush_out c)
          (Hashtbl.copy t.conns);
        Hashtbl.iter
          (fun _ c -> if List.mem c.fd rs then read_conn t c)
          (Hashtbl.copy t.conns);
        (* Reap connections whose write side failed. *)
        Hashtbl.iter
          (fun _ c -> if not c.alive then close_conn t c)
          (Hashtbl.copy t.conns)
  done;
  (* Drained: flush remaining output, close everything, remove socket. *)
  Hashtbl.iter
    (fun _ c ->
      let deadline = Unix.gettimeofday () +. 1.0 in
      while c.outbuf <> "" && c.alive && Unix.gettimeofday () < deadline do
        (match Unix.select [] [ c.fd ] [] 0.1 with
        | _, [ _ ], _ -> flush_out c
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      done;
      (try Unix.close c.fd with Unix.Unix_error _ -> ()))
    t.conns;
  Hashtbl.reset t.conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  log t "shut down"
