(** Per-request merged trace assembly for the serve daemon.

    One value of {!t} follows one protocol request from receipt to
    response. The coordinator records its own lifecycle events into it
    (parse, queue wait, coalesce joins, reply) on a dedicated process
    track, and a worker {!Telemetry.Sink} can be attached so the
    simulation's own spans — the per-SM Probe tracks — land in the same
    export. {!export} renders everything as a single Chrome trace-event
    JSON document, the unit the flight recorder writes per slow request.

    Time bases differ by track: coordinator events are wall-clock
    microseconds relative to the request's arrival; simulation tracks
    keep their native cycle timestamps. Perfetto renders both on one
    timeline — the document is a correlation artifact keyed by request
    id, not a single-clock profile. *)

type t

(** Coordinator events carry this [pid] ({!coordinator_pid} = 1000),
    far above any simulation track (Probe pids are SM ids, the GPU
    driver track is [n_sms]), so merged exports can never collide. *)
val coordinator_pid : int

(** [create ~req ~rtype] starts the clock. [req] is the daemon-wide
    request sequence number (every event's argument, and the filename
    component the flight recorder uses); [rtype] the protocol request
    type ([run], [suite], ...). *)
val create : req:int -> rtype:string -> t

val req : t -> int

val rtype : t -> string

(** Wall-clock milliseconds since {!create}. *)
val elapsed_ms : t -> float

(** [span t name ~since] records a coordinator span from wall-clock
    [since] (as returned by [Unix.gettimeofday]) to now. *)
val span : t -> string -> since:float -> unit

(** As {!span} but with an explicit end; starts before the request's
    arrival clamp to it. *)
val span_between : t -> string -> t_start:float -> t_end:float -> unit

(** [instant t name] marks a coordinator instant (e.g. [coalesce]). *)
val instant : t -> string -> unit

(** Attach the worker sink whose simulation trace belongs to this
    request. Coalesced requests attach the in-flight job's shared sink;
    attaching must happen before {!export} and after the worker has
    finished writing (the coordinator only exports completed jobs). *)
val set_sink : t -> Telemetry.Sink.t option -> unit

(** The merged Chrome trace-event JSON: a synthetic request marker,
    every coordinator event, then the attached sink's simulation events
    (when any). Valid against {!Telemetry.Json_check.validate_chrome_trace}. *)
val export : t -> string
