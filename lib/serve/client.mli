(** Blocking client of the [regmutex serve] daemon — the CLI's
    [--daemon] mode and the bench/test harnesses speak through this. *)

type t

(** Connect to the daemon's Unix-domain socket.
    @raise Unix.Unix_error when nothing listens there. *)
val connect : string -> t

(** [connect_retry ?attempts ?delay path] — retry [connect] (default 50
    attempts, 0.1s apart) while the daemon starts up.
    @raise Failure when every attempt fails. *)
val connect_retry : ?attempts:int -> ?delay:float -> string -> t

(** Send one request and block for its response (requests are matched by
    id, so coalesced/queued responses arriving out of order are handled).
    @raise Failure on a closed connection or an undecodable frame. *)
val request : t -> Protocol.request -> Protocol.response

(** {!request}, retrying (0.05s apart) while the daemon answers [busy].
    Default 200 attempts; the last [Busy] is returned if it never
    clears. *)
val request_retry : ?attempts:int -> ?delay:float -> t -> Protocol.request
  -> Protocol.response

val close : t -> unit
