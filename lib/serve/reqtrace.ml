module Trace = Telemetry.Trace

(* Probe tracks use sm ids as pids and the GPU driver claims [n_sms];
   1000 clears any plausible SM count without colliding. *)
let coordinator_pid = 1000

type t = {
  req : int;
  rtype : string;
  t0 : float;
  trace : Trace.t;
  mutable sink : Telemetry.Sink.t option;
}

let create ~req ~rtype =
  let trace = Trace.create ~capacity:256 () in
  Trace.set_process_name trace ~pid:coordinator_pid "serve coordinator";
  Trace.set_thread_name trace ~pid:coordinator_pid ~tid:0 "request";
  { req; rtype; t0 = Unix.gettimeofday (); trace; sink = None }

let req t = t.req
let rtype t = t.rtype

let rel_us t at = int_of_float ((at -. t.t0) *. 1e6)

let elapsed_ms t = (Unix.gettimeofday () -. t.t0) *. 1e3

let span_between t name ~t_start ~t_end =
  let ts = max 0 (rel_us t t_start) in
  let dur = max 0 (rel_us t t_end - ts) in
  Trace.span t.trace ~ts ~dur ~pid:coordinator_pid ~tid:0
    ~name:(Trace.intern t.trace name) ~arg:t.req

let span t name ~since = span_between t name ~t_start:since ~t_end:(Unix.gettimeofday ())

let instant t name =
  Trace.instant t.trace
    ~ts:(rel_us t (Unix.gettimeofday ()))
    ~pid:coordinator_pid ~tid:0
    ~name:(Trace.intern t.trace name)
    ~arg:t.req

let set_sink t sink = t.sink <- sink

let export t =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "@[<v 1>{@,\"traceEvents\": @[<v 1>[@,";
  (* The synthetic marker doubles as the unconditioned first element, so
     [export_chrome_events] (comma-before-each) composes both traces. *)
  Format.fprintf ppf
    "{\"ph\": \"i\", \"ts\": 0, \"pid\": %d, \"tid\": 0, \"s\": \"t\", \
     \"name\": \"request %s\", \"args\": {\"req\": %d}}"
    coordinator_pid t.rtype t.req;
  Trace.export_chrome_events ppf t.trace;
  (match t.sink with
  | Some s -> Trace.export_chrome_events ppf s.Telemetry.Sink.trace
  | None -> ());
  Format.fprintf ppf "@]@,],@,\"displayTimeUnit\": \"ns\"@]@,}@.";
  Format.pp_print_flush ppf ();
  Buffer.contents buf
