(** The [regmutex serve] daemon: a resident process listening on a
    Unix-domain socket, speaking the line-delimited JSON protocol of
    {!Protocol}.

    Architecture: one coordinator thread owns the socket, every
    connection, and all cache probes — warm hits are answered inline in
    microseconds without touching a worker. Cold work is enqueued as
    jobs on the engine's persistent {!Experiments.Engine.Pool} (the same
    pool the batch paths use; workers are spawned once at startup and
    reused). Identical concurrent requests are coalesced single-flight:
    one computation runs, every waiter gets the shared result, and the
    result-store key is pinned for the duration so LRU eviction can
    never remove an entry that is in flight. Past [max_queue] distinct
    in-flight jobs the daemon answers [busy] instead of queueing —
    explicit back-pressure, never an unbounded queue.

    The daemon observes itself: a {!Telemetry.Metrics} registry with
    request counters and latency histograms by type, warm-hit/compute/
    coalesced/busy counters, in-flight and queue-depth gauges,
    [regmutex_build_info] / [regmutex_uptime_seconds], served as
    Prometheus text by the [metrics] request; a structured
    {!Telemetry.Log} whose recent records the [logs] request tails; and
    a flight recorder — every queued request is followed by a
    {!Reqtrace} carrying the coordinator's queue/compute/coalesce/reply
    spans merged with the worker's simulation trace, written to
    [trace_dir] as one Chrome trace-event JSON per request slower than
    [slow_ms].

    On [shutdown]: the listener closes, in-flight jobs drain (their
    waiters still get their responses), the pool is joined, and the
    socket file is removed. *)

type config = {
  socket_path : string;
  jobs : int;  (** pool worker domains, clamped to >= 1 *)
  max_queue : int;
      (** distinct in-flight jobs beyond which requests get [busy] *)
  cache_dir : string option;
      (** result store root (conventionally ["_results"]); [None]
          disables persistence *)
  store_limit_bytes : int option;  (** LRU bound for the result store *)
  verbose : bool;  (** mirror log records to stderr, at [Debug] level *)
  log_level : Telemetry.Log.level;
      (** minimum level retained by the structured log (overridden to
          [Debug] by [verbose]) *)
  log_file : string option;  (** append JSON-lines records to this file *)
  trace_dir : string option;
      (** flight-recorder directory; [None] disables per-request tracing
          entirely (cold computes then run without a sink) *)
  slow_ms : float;
      (** latency threshold above which a completed request's merged
          trace is written to [trace_dir] (capped at 32 files) *)
}

(** [jobs = auto], [max_queue = 64], store under ["_results"] with no
    size bound, quiet, log at [Info] with no file sink, flight recorder
    under ["_flight"] at [slow_ms = 500]. *)
val default_config : socket_path:string -> config

(** Run the daemon. Blocks until a [shutdown] request has been accepted
    and drained. The socket path must be free or stale (a leftover
    socket file is replaced). *)
val run : config -> unit
