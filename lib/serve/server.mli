(** The [regmutex serve] daemon: a resident process listening on a
    Unix-domain socket, speaking the line-delimited JSON protocol of
    {!Protocol}.

    Architecture: one coordinator thread owns the socket, every
    connection, and all cache probes — warm hits are answered inline in
    microseconds without touching a worker. Cold work is enqueued as
    jobs on the engine's persistent {!Experiments.Engine.Pool} (the same
    pool the batch paths use; workers are spawned once at startup and
    reused). Identical concurrent requests are coalesced single-flight:
    one computation runs, every waiter gets the shared result, and the
    result-store key is pinned for the duration so LRU eviction can
    never remove an entry that is in flight. Past [max_queue] distinct
    in-flight jobs the daemon answers [busy] instead of queueing —
    explicit back-pressure, never an unbounded queue.

    The daemon observes itself: a {!Telemetry.Metrics} registry with
    request counters by type, warm-hit/compute/coalesced/busy counters,
    an in-flight-jobs gauge and a request-latency histogram, served as
    Prometheus text by the [metrics] request.

    On [shutdown]: the listener closes, in-flight jobs drain (their
    waiters still get their responses), the pool is joined, and the
    socket file is removed. *)

type config = {
  socket_path : string;
  jobs : int;  (** pool worker domains, clamped to >= 1 *)
  max_queue : int;
      (** distinct in-flight jobs beyond which requests get [busy] *)
  cache_dir : string option;
      (** result store root (conventionally ["_results"]); [None]
          disables persistence *)
  store_limit_bytes : int option;  (** LRU bound for the result store *)
  verbose : bool;  (** log requests to stderr *)
}

(** [jobs = auto], [max_queue = 64], store under ["_results"] with no
    size bound, quiet. *)
val default_config : socket_path:string -> config

(** Run the daemon. Blocks until a [shutdown] request has been accepted
    and drained. The socket path must be free or stale (a leftover
    socket file is replaced). *)
val run : config -> unit
