type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | s -> Error (Printf.sprintf "unknown log level %S (debug|info|warn|error)" s)

type field = string * Json_check.json

let str k v = (k, Json_check.Str v)
let int k v = (k, Json_check.Num (float_of_int v))
let float k v = (k, Json_check.Num v)
let bool k v = (k, Json_check.Bool v)

(* Ambient per-domain context, independent of any logger instance so the
   pool can install it without knowing who logs underneath. *)
let ctx_key : field list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let ctx () = Domain.DLS.get ctx_key

let with_ctx fields f =
  let saved = Domain.DLS.get ctx_key in
  Domain.DLS.set ctx_key (saved @ fields);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ctx_key saved) f

(* One ring per domain: a burst on a worker can only evict that worker's
   own history. [seq] orders records globally so [tail] can merge. *)
type ring = {
  lines : string array;  (* "" = empty slot *)
  seqs : int array;
  mutable next : int;
  mutable filled : bool;
  mutable r_dropped : int;
}

type t = {
  ring_capacity : int;
  mutable lvl : level;
  mutable to_stderr : bool;
  mutable file : out_channel option;
  rings : (int, ring) Hashtbl.t;  (* domain id -> ring *)
  mutable seq : int;
  lock : Mutex.t;
}

let create ?(ring_capacity = 1024) ?(min_level = Info) () =
  {
    ring_capacity = max 1 ring_capacity;
    lvl = min_level;
    to_stderr = false;
    file = None;
    rings = Hashtbl.create 8;
    seq = 0;
    lock = Mutex.create ();
  }

let set_min_level t l = t.lvl <- l

let min_level t = t.lvl

let set_stderr t b = t.to_stderr <- b

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let close_file t =
  locked t (fun () ->
      match t.file with
      | Some oc ->
          t.file <- None;
          (try close_out oc with Sys_error _ -> ())
      | None -> ())

let open_file t path =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  locked t (fun () ->
      (match t.file with
      | Some old -> ( try close_out old with Sys_error _ -> ())
      | None -> ());
      t.file <- Some oc)

let ring_for t did =
  match Hashtbl.find_opt t.rings did with
  | Some r -> r
  | None ->
      let r =
        {
          lines = Array.make t.ring_capacity "";
          seqs = Array.make t.ring_capacity 0;
          next = 0;
          filled = false;
          r_dropped = 0;
        }
      in
      Hashtbl.replace t.rings did r;
      r

let log t level ~src msg fields =
  if level_rank level >= level_rank t.lvl then begin
    let record =
      Json_check.Obj
        (("ts", Json_check.Num (Unix.gettimeofday ()))
        :: ("level", Json_check.Str (level_name level))
        :: ("src", Json_check.Str src)
        :: ("msg", Json_check.Str msg)
        :: (fields @ ctx ()))
    in
    let line = Json_check.to_string record in
    let did = (Domain.self () :> int) in
    locked t (fun () ->
        let r = ring_for t did in
        if r.filled then r.r_dropped <- r.r_dropped + 1;
        r.lines.(r.next) <- line;
        r.seqs.(r.next) <- t.seq;
        t.seq <- t.seq + 1;
        r.next <- (r.next + 1) mod t.ring_capacity;
        if r.next = 0 then r.filled <- true;
        if t.to_stderr then Printf.eprintf "%s\n%!" line;
        match t.file with
        | Some oc ->
            output_string oc line;
            output_char oc '\n';
            flush oc
        | None -> ())
  end

let debug t ~src msg fields = log t Debug ~src msg fields
let info t ~src msg fields = log t Info ~src msg fields
let warn t ~src msg fields = log t Warn ~src msg fields
let error t ~src msg fields = log t Error ~src msg fields

let tail ?(limit = 100) t =
  locked t (fun () ->
      let all = ref [] in
      Hashtbl.iter
        (fun _ r ->
          let n = if r.filled then t.ring_capacity else r.next in
          let start = if r.filled then r.next else 0 in
          for k = 0 to n - 1 do
            let i = (start + k) mod t.ring_capacity in
            all := (r.seqs.(i), r.lines.(i)) :: !all
          done)
        t.rings;
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !all in
      let n = List.length sorted in
      let skip = max 0 (n - max 0 limit) in
      List.filteri (fun i _ -> i >= skip) sorted |> List.map snd)

let dropped t =
  locked t (fun () ->
      Hashtbl.fold (fun _ r acc -> acc + r.r_dropped) t.rings 0)

let emitted t = locked t (fun () -> t.seq)
