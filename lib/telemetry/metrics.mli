(** Metrics registry: named counters, gauges and fixed-bucket histograms.

    Registration ({!counter}, {!gauge}, {!histogram}) happens once, up
    front, and may allocate; it is idempotent — registering a name twice
    returns the existing instrument, so several SMs (or repeated runs into
    the same registry) can share instruments without coordination. The
    update path ({!inc}, {!set}, {!observe}) is allocation-free: one
    mutable-field store, or for histograms a linear scan of a small
    preallocated bucket array.

    Naming convention (see EXPERIMENTS.md "Observability"): every metric
    is prefixed [regmutex_]; monotonic counters end in [_total]; cycle
    histograms end in [_cycles]; gauges name the measured quantity
    directly. Dumps come in Prometheus text exposition format
    ({!pp_prometheus}) and JSON ({!pp_json}), both in registration
    order. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** [counter t name] registers (or retrieves) a monotonic counter.

    [?labels] attaches Prometheus labels, as in
    [counter ~labels:["type", "run"] t "regmutex_requests_total"]. Each
    distinct [(name, labels)] pair is its own instrument (its own time
    series); the registry key — and the key in {!pp_json} — is the
    rendered series name [name{k="v",...}] with label values escaped per
    the exposition format. Label pairs are significant in the order
    given.
    @raise Invalid_argument if the series is registered as another
    kind. *)
val counter : ?help:string -> ?labels:(string * string) list -> t -> string -> counter

val gauge : ?help:string -> ?labels:(string * string) list -> t -> string -> gauge

(** [histogram ~buckets t name] — [buckets] are the inclusive upper bounds
    of each bucket, strictly increasing; an implicit [+Inf] overflow
    bucket is appended. On retrieval of an existing histogram the bucket
    bounds must match. [?labels] as in {!counter}; bucket series merge
    the instrument labels with [le], e.g. [name_bucket{type="run",le="8"}].
    @raise Invalid_argument on unsorted/empty bounds or a kind/bound
    mismatch with an existing registration. *)
val histogram :
  ?help:string -> ?labels:(string * string) list -> buckets:int array -> t -> string -> histogram

val inc : counter -> int -> unit
val set : gauge -> float -> unit

(** [observe h v] adds [v] to the first bucket whose bound is [>= v] (the
    overflow bucket when none is). *)
val observe : histogram -> int -> unit

val counter_value : counter -> int
val gauge_value : gauge -> float

(** Per-bucket counts (not cumulative), overflow bucket last — length is
    [Array.length buckets + 1]. Fresh copy. *)
val histogram_counts : histogram -> int array

val histogram_sum : histogram -> int
val histogram_total : histogram -> int
val histogram_buckets : histogram -> int array

(** Prometheus text exposition format: [# HELP] / [# TYPE] headers,
    cumulative [_bucket{le="..."}] series plus [_sum] / [_count] for
    histograms. *)
val pp_prometheus : Format.formatter -> t -> unit

(** One JSON object: [{"counters": {...}, "gauges": {...},
    "histograms": {name: {"buckets": [{"le": b, "count": n}, ...],
    "sum": s, "count": c}}}]. *)
val pp_json : Format.formatter -> t -> unit
