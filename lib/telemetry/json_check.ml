type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad of int * string

let fail pos msg = raise (Bad (pos, msg))

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail !pos ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail !pos "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then fail !pos "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail !pos "bad \\u escape"
              in
              (* Non-BMP handling is irrelevant for our own output; keep
                 the raw code point as UTF-8 for BMP, '?' otherwise. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 4
          | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> f
    | None -> fail start ("bad number " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail !pos "expected , or }"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail !pos "expected , or ]"
          in
          List (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail !pos (Printf.sprintf "unexpected %c" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let parse s =
  try parse s with Bad (pos, msg) -> failwith (Printf.sprintf "json: %s at byte %d" msg pos)

let parse_opt s = try Ok (parse s) with Failure msg -> Error msg

(* --- printing ---------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Integral floats print without a fraction (the common case for our
   counters and ids); everything else uses %.17g, enough digits that
   [parse] recovers the same float. JSON has no NaN/Infinity literal, so
   non-finite numbers degrade to null — a parseable frame beats a
   syntactically invalid one in a log file or protocol line. *)
let number_literal f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f -> Buffer.add_string buf (number_literal f)
  | Str s -> escape_string buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add_json buf v)
        l;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          add_json buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  add_json buf j;
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string j)

(* --- Chrome trace-event schema ----------------------------------------- *)

let field obj key = List.assoc_opt key obj

let validate_event i ev =
  let err msg = Error (Printf.sprintf "event %d: %s" i msg) in
  match ev with
  | Obj fields -> (
      let num key =
        match field fields key with
        | Some (Num _) -> Ok ()
        | Some _ -> err (key ^ " is not a number")
        | None -> err ("missing " ^ key)
      in
      match field fields "ph" with
      | Some (Str ph)
        when String.length ph = 1 && String.contains "XiCMBE" ph.[0] -> (
          let ( let* ) = Result.bind in
          let* () =
            match field fields "name" with
            | Some (Str _) -> Ok ()
            | Some _ -> err "name is not a string"
            | None -> err "missing name"
          in
          let* () = num "pid" in
          let* () = if ph = "M" then Ok () else num "ts" in
          let* () =
            match ph with "X" | "i" | "B" | "E" -> num "tid" | _ -> Ok ()
          in
          if ph = "X" then num "dur" else Ok ())
      | Some (Str ph) -> err ("bad ph " ^ ph)
      | Some _ -> err "ph is not a string"
      | None -> err "missing ph")
  | _ -> err "not an object"

let validate_chrome_trace s =
  match parse_opt s with
  | Error msg -> Error msg
  | Ok (Obj fields) -> (
      match field fields "traceEvents" with
      | Some (List events) ->
          let rec go i = function
            | [] -> Ok i
            | ev :: rest -> (
                match validate_event i ev with
                | Ok () -> go (i + 1) rest
                | Error _ as e -> e)
          in
          go 0 events
      | Some _ -> Error "traceEvents is not an array"
      | None -> Error "missing traceEvents")
  | Ok _ -> Error "top level is not an object"
