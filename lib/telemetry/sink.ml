type t = { trace : Trace.t; metrics : Metrics.t }

let create ?trace_capacity () =
  { trace = Trace.create ?capacity:trace_capacity (); metrics = Metrics.create () }
