(** Structured, leveled JSON-lines logging.

    Every record is one {!Json_check.to_string}-rendered object on a
    single line — [{"ts": ..., "level": "info", "src": "serve",
    "msg": ..., ...fields}] — so log files are line-delimited JSON that
    the same parser that speaks the serve protocol can read back.

    Records are retained in {e per-domain ring buffers} (newest wins;
    {!dropped} counts the overwritten lines per domain and in total), so
    a long-lived daemon can expose its recent history ({!tail}) without
    unbounded memory, and a burst on one worker domain can never evict
    another domain's records. Optional sinks mirror each record as it is
    emitted: stderr ({!set_stderr}) and an append-only file
    ({!open_file}).

    {!with_ctx} installs ambient fields on the {e current domain} —
    every record logged while the closure runs carries them. The serve
    daemon threads its request ids through
    {!Experiments.Engine.Pool.submit} into worker domains this way, so a
    worker's "simulate" lines carry the request that caused them. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

val level_of_string : string -> (level, string) result

(** A record field: key plus JSON value. *)
type field = string * Json_check.json

(** Field helpers: [str "workload" "BFS"], [int "req" 7], ... *)
val str : string -> string -> field

val int : string -> int -> field

val float : string -> float -> field

val bool : string -> bool -> field

type t

(** [create ()] — no sinks, ring of [ring_capacity] (default 1024)
    records per domain, [min_level] (default [Info]) below which records
    are discarded entirely. *)
val create : ?ring_capacity:int -> ?min_level:level -> unit -> t

val set_min_level : t -> level -> unit

val min_level : t -> level

(** Mirror records to stderr (off by default). *)
val set_stderr : t -> bool -> unit

(** Append records to [path] (creating it if needed); replaces any
    previously opened file sink.
    @raise Sys_error when the file cannot be opened. *)
val open_file : t -> string -> unit

(** Flush and close the file sink (no-op without one). *)
val close_file : t -> unit

(** [log t level ~src msg fields] emits one record. [src] names the
    subsystem ([serve], [engine], ...). Ambient {!with_ctx} fields are
    appended after [fields]. Below [min_level] this is one branch. *)
val log : t -> level -> src:string -> string -> field list -> unit

val debug : t -> src:string -> string -> field list -> unit

val info : t -> src:string -> string -> field list -> unit

val warn : t -> src:string -> string -> field list -> unit

val error : t -> src:string -> string -> field list -> unit

(** [tail ?limit t] — the most recent [limit] (default 100) retained
    records across every domain's ring, oldest first (merged by global
    emission order). *)
val tail : ?limit:int -> t -> string list

(** Records overwritten across all rings since creation. *)
val dropped : t -> int

(** Records ever emitted (retained + dropped). *)
val emitted : t -> int

(** [with_ctx fields f] runs [f] with [fields] appended to every record
    the {e current domain} logs (through any logger), nesting on top of
    any enclosing context; restored on return or exception. *)
val with_ctx : field list -> (unit -> 'a) -> 'a

(** The current domain's ambient context, innermost last. *)
val ctx : unit -> field list
