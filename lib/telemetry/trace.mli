(** Ring-buffer trace recorder with Chrome trace-event (Perfetto) export.

    Records are typed, fixed-size and held in flat arrays
    (structure-of-arrays) that double geometrically up to the capacity —
    attaching a sink to a short run costs a few pages, not the full
    window — after which recording never allocates. Growth only happens
    before the first wrap, so drop-oldest behaviour is identical to a
    preallocated ring. Timestamps are simulation cycles; tracks
    follow the Chrome model — a [pid] per process (one per SM, plus one
    for the GPU driver) and a [tid] per thread (one per warp slot, plus
    reserved tracks for stall episodes and CTA slots).

    Spans are recorded {e at completion} (Chrome ["X"] complete events
    carrying [ts] + [dur]), so the ring degrades gracefully: when it
    fills, the {e oldest} records are overwritten ({!dropped} counts them)
    and the retained window is always a well-formed suffix of the run —
    no dangling begin/end pairs. *)

type t

type kind = Span | Instant | Counter

(** Decoded view of one record (allocated on read, never on write).
    [name] is resolved back from its interned id; [arg] is [None] when
    the record carried {!no_arg}. *)
type record = {
  kind : kind;
  ts : int;
  dur : int;   (** spans only; 0 otherwise *)
  pid : int;
  tid : int;
  name : string;
  arg : int option;
}

(** [capacity] (default 1,000,000 records; clamped to >= 1) bounds the
    retained window; the buffer grows lazily up to it. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** Intern a name, returning the id the recording functions take.
    Allocates only on the first occurrence of a string. *)
val intern : t -> string -> int

(** Sentinel for "no argument" ([min_int]). *)
val no_arg : int

(** [span t ~ts ~dur ~pid ~tid ~name ~arg] records a complete span
    ([ph:"X"]) covering [\[ts, ts+dur)]. *)
val span : t -> ts:int -> dur:int -> pid:int -> tid:int -> name:int -> arg:int -> unit

val instant : t -> ts:int -> pid:int -> tid:int -> name:int -> arg:int -> unit

(** [counter t ~ts ~pid ~name ~value] records a counter sample
    ([ph:"C"]); Perfetto renders one counter track per [(pid, name)]. *)
val counter : t -> ts:int -> pid:int -> name:int -> value:int -> unit

(** Records currently retained (<= capacity). *)
val length : t -> int

(** Oldest records overwritten after the ring filled. *)
val dropped : t -> int

(** Total records ever pushed ([length + dropped]). *)
val recorded : t -> int

(** Oldest-to-newest over the retained window. *)
val iter : t -> (record -> unit) -> unit

(** Track naming, exported as Chrome [M] (metadata) events. *)
val set_process_name : t -> pid:int -> string -> unit

val set_thread_name : t -> pid:int -> tid:int -> string -> unit

(** Chrome trace-event JSON: [{"traceEvents": [...]}], loadable in
    Perfetto (ui.perfetto.dev) or chrome://tracing. Metadata events
    first, then the retained records oldest-to-newest. *)
val export_chrome : Format.formatter -> t -> unit

(** The same event sequence as {!export_chrome} (metadata first) without
    the surrounding [traceEvents] array, every event {e preceded} by a
    comma — the composition hook for merged exports: a caller that has
    already printed at least one event appends this trace's events into
    its own array (the serve daemon merges coordinator spans with a
    worker's simulation trace this way). *)
val export_chrome_events : Format.formatter -> t -> unit
