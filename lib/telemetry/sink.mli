(** The sink a simulation run records into: a trace ring plus a metrics
    registry, handed to the simulator as an option — [None] is the
    disabled path and must cost nothing beyond an option test. *)

type t = { trace : Trace.t; metrics : Metrics.t }

val create : ?trace_capacity:int -> unit -> t
