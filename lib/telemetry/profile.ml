type slot = { name : string; total_ns : int Atomic.t; calls : int Atomic.t }

let slots : slot list ref = ref []
let slots_lock = Mutex.create ()
let on = Atomic.make false

let phase name =
  Mutex.lock slots_lock;
  let s =
    match List.find_opt (fun s -> s.name = name) !slots with
    | Some s -> s
    | None ->
        let s = { name; total_ns = Atomic.make 0; calls = Atomic.make 0 } in
        slots := s :: !slots;
        s
  in
  Mutex.unlock slots_lock;
  s

let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let record_ns s ns =
  ignore (Atomic.fetch_and_add s.total_ns ns);
  ignore (Atomic.fetch_and_add s.calls 1)

let time s f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
        record_ns s ns)
      f
  end

let report () =
  List.filter_map
    (fun s ->
      let calls = Atomic.get s.calls in
      if calls = 0 then None else Some (s.name, Atomic.get s.total_ns, calls))
    (List.rev !slots)

let reset () =
  List.iter
    (fun s ->
      Atomic.set s.total_ns 0;
      Atomic.set s.calls 0)
    !slots

let pp_report ppf () =
  let rows = report () in
  if rows = [] then Format.fprintf ppf "profile: no timed phases@."
  else begin
    Format.fprintf ppf "@[<v>profile (wall-clock, inclusive):@,";
    List.iter
      (fun (name, ns, calls) ->
        Format.fprintf ppf "  %-24s %10.3f ms  %6d calls@," name
          (float_of_int ns /. 1e6) calls)
      rows;
    Format.fprintf ppf "@]"
  end
