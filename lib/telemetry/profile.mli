(** Host-side profiling scopes for coarse engine phases.

    Slots are registered once at module-init time ({!phase}) and updated
    with atomic adds, so concurrent domains (e.g. the sweep engine's
    worker pool) can time the same phase without coordination. Timing is
    off by default; {!time} costs one boolean load when disabled. *)

type slot

(** [phase name] registers (or retrieves) the slot for [name].
    Call at module initialisation, before domains spawn. *)
val phase : string -> slot

val set_enabled : bool -> unit
val enabled : unit -> bool

(** [time slot f] runs [f ()], adding its wall-clock duration to [slot]
    when profiling is enabled. Exceptions propagate; the elapsed time is
    still recorded. *)
val time : slot -> (unit -> 'a) -> 'a

(** Direct accumulation, for spans that don't fit a closure. *)
val record_ns : slot -> int -> unit

(** [(name, total_ns, calls)] per slot with at least one call, in
    registration order. *)
val report : unit -> (string * int * int) list

(** Zero all accumulators (keeps registrations). *)
val reset : unit -> unit

val pp_report : Format.formatter -> unit -> unit
