type counter = {
  c_name : string;
  c_labels : string;  (* rendered pairs, e.g. [k="v",k2="v2"]; "" = none *)
  c_help : string;
  mutable c_value : int;
}

type gauge = {
  g_name : string;
  g_labels : string;
  g_help : string;
  mutable g_value : float;
}

type histogram = {
  h_name : string;
  h_labels : string;
  h_help : string;
  bounds : int array;  (* inclusive upper bounds, strictly increasing *)
  counts : int array;  (* per-bucket, overflow bucket last *)
  mutable sum : int;
  mutable total : int;
}

(* Prometheus label-value escaping: backslash, quote, newline. *)
let render_labels = function
  | [] -> ""
  | pairs ->
      String.concat ","
        (List.map
           (fun (k, v) ->
             let buf = Buffer.create (String.length v + 8) in
             String.iter
               (fun c ->
                 match c with
                 | '\\' -> Buffer.add_string buf "\\\\"
                 | '"' -> Buffer.add_string buf "\\\""
                 | '\n' -> Buffer.add_string buf "\\n"
                 | c -> Buffer.add_char buf c)
               v;
             Printf.sprintf "%s=\"%s\"" k (Buffer.contents buf))
           pairs)

(* The registry key and the JSON/display name: [name{k="v"}]. Two label
   sets of one name are distinct instruments, as in Prometheus. *)
let display name labels =
  if labels = "" then name else Printf.sprintf "%s{%s}" name labels

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  mutable order : instrument list;  (* reverse registration order *)
  index : (string, instrument) Hashtbl.t;
}

let create () = { order = []; index = Hashtbl.create 32 }

let register t name make =
  match Hashtbl.find_opt t.index name with
  | Some existing -> existing
  | None ->
      let i = make () in
      Hashtbl.add t.index name i;
      t.order <- i :: t.order;
      i

let kind_clash name = invalid_arg ("Metrics: " ^ name ^ " registered as another kind")

let counter ?(help = "") ?(labels = []) t name =
  let labels = render_labels labels in
  match
    register t (display name labels) (fun () ->
        Counter { c_name = name; c_labels = labels; c_help = help; c_value = 0 })
  with
  | Counter c -> c
  | Gauge _ | Histogram _ -> kind_clash name

let gauge ?(help = "") ?(labels = []) t name =
  let labels = render_labels labels in
  match
    register t (display name labels) (fun () ->
        Gauge { g_name = name; g_labels = labels; g_help = help; g_value = 0. })
  with
  | Gauge g -> g
  | Counter _ | Histogram _ -> kind_clash name

let histogram ?(help = "") ?(labels = []) ~buckets t name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing")
    buckets;
  let labels = render_labels labels in
  match
    register t (display name labels) (fun () ->
        Histogram
          {
            h_name = name;
            h_labels = labels;
            h_help = help;
            bounds = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            sum = 0;
            total = 0;
          })
  with
  | Histogram h ->
      if h.bounds <> buckets then
        invalid_arg ("Metrics: " ^ name ^ " registered with different buckets");
      h
  | Counter _ | Gauge _ -> kind_clash name

let inc c n = c.c_value <- c.c_value + n
let set g v = g.g_value <- v

let observe h v =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  h.counts.(slot 0) <- h.counts.(slot 0) + 1;
  h.sum <- h.sum + v;
  h.total <- h.total + 1

let counter_value c = c.c_value
let gauge_value g = g.g_value
let histogram_counts h = Array.copy h.counts
let histogram_sum h = h.sum
let histogram_total h = h.total
let histogram_buckets h = Array.copy h.bounds

let instruments t = List.rev t.order

(* --- dumps ------------------------------------------------------------- *)

(* %h-style shortest faithful float; Prometheus accepts any decimal. *)
let pp_float ppf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%.12g" v

let pp_prometheus ppf t =
  (* HELP/TYPE headers name the metric family (bare name); labelled
     series of one family share a single header, emitted on first sight. *)
  let seen = Hashtbl.create 16 in
  let header name help kind =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      if help <> "" then Format.fprintf ppf "# HELP %s %s@," name help;
      Format.fprintf ppf "# TYPE %s %s@," name kind
    end
  in
  (* [suffix] goes between the name and the label set: [name_bucket{...,le}]. *)
  let series name labels suffix extra =
    match (labels, extra) with
    | "", "" -> name ^ suffix
    | "", e -> Printf.sprintf "%s%s{%s}" name suffix e
    | l, "" -> Printf.sprintf "%s%s{%s}" name suffix l
    | l, e -> Printf.sprintf "%s%s{%s,%s}" name suffix l e
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (function
      | Counter c ->
          header c.c_name c.c_help "counter";
          Format.fprintf ppf "%s %d@," (series c.c_name c.c_labels "" "") c.c_value
      | Gauge g ->
          header g.g_name g.g_help "gauge";
          Format.fprintf ppf "%s %a@," (series g.g_name g.g_labels "" "") pp_float g.g_value
      | Histogram h ->
          header h.h_name h.h_help "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              cum := !cum + h.counts.(i);
              Format.fprintf ppf "%s %d@,"
                (series h.h_name h.h_labels "_bucket" (Printf.sprintf "le=\"%d\"" b))
                !cum)
            h.bounds;
          Format.fprintf ppf "%s %d@,"
            (series h.h_name h.h_labels "_bucket" "le=\"+Inf\"")
            h.total;
          Format.fprintf ppf "%s %d@," (series h.h_name h.h_labels "_sum" "") h.sum;
          Format.fprintf ppf "%s %d@," (series h.h_name h.h_labels "_count" "") h.total)
    (instruments t);
  Format.fprintf ppf "@]"

let json_string ppf s =
  Format.pp_print_char ppf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Format.pp_print_string ppf "\\\""
      | '\\' -> Format.pp_print_string ppf "\\\\"
      | '\n' -> Format.pp_print_string ppf "\\n"
      | '\t' -> Format.pp_print_string ppf "\\t"
      | c when Char.code c < 0x20 ->
          Format.fprintf ppf "\\u%04x" (Char.code c)
      | c -> Format.pp_print_char ppf c)
    s;
  Format.pp_print_char ppf '"'

let pp_json ppf t =
  let sep first = if !first then first := false else Format.fprintf ppf ",@," in
  Format.fprintf ppf "@[<v 2>{@,";
  Format.fprintf ppf "@[<v 2>\"counters\": {@,";
  let first = ref true in
  List.iter
    (function
      | Counter c ->
          sep first;
          Format.fprintf ppf "%a: %d" json_string (display c.c_name c.c_labels) c.c_value
      | Gauge _ | Histogram _ -> ())
    (instruments t);
  Format.fprintf ppf "@]@,},@,";
  Format.fprintf ppf "@[<v 2>\"gauges\": {@,";
  let first = ref true in
  List.iter
    (function
      | Gauge g ->
          sep first;
          Format.fprintf ppf "%a: %a" json_string (display g.g_name g.g_labels) pp_float
            g.g_value
      | Counter _ | Histogram _ -> ())
    (instruments t);
  Format.fprintf ppf "@]@,},@,";
  Format.fprintf ppf "@[<v 2>\"histograms\": {@,";
  let first = ref true in
  List.iter
    (function
      | Histogram h ->
          sep first;
          Format.fprintf ppf "@[<v 2>%a: {@," json_string (display h.h_name h.h_labels);
          Format.fprintf ppf "\"buckets\": [";
          Array.iteri
            (fun i b ->
              Format.fprintf ppf "%s{\"le\": %d, \"count\": %d}"
                (if i = 0 then "" else ", ")
                b h.counts.(i))
            h.bounds;
          Format.fprintf ppf "%s{\"le\": \"+Inf\", \"count\": %d}],@,"
            (if Array.length h.bounds = 0 then "" else ", ")
            h.counts.(Array.length h.bounds);
          Format.fprintf ppf "\"sum\": %d,@,\"count\": %d@]@,}" h.sum h.total
      | Counter _ | Gauge _ -> ())
    (instruments t);
  Format.fprintf ppf "@]@,}@]@,}"
