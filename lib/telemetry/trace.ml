type kind = Span | Instant | Counter

type record = {
  kind : kind;
  ts : int;
  dur : int;
  pid : int;
  tid : int;
  name : string;
  arg : int option;
}

let no_arg = min_int

(* Structure-of-arrays ring. [next] is the write cursor; once [filled]
   the slot at [next] is the oldest record and gets overwritten. The
   arrays start small and double up to [cap] as records arrive: a
   short run never pays for the full window, which keeps sink creation
   cheap enough to attach per-simulation. Growth happens only before
   the first wrap (records are then contiguous in [0, next)), so the
   drop-oldest semantics are identical to a preallocated ring. *)
type t = {
  cap : int;
  mutable kinds : kind array;
  mutable tss : int array;
  mutable durs : int array;
  mutable pids : int array;
  mutable tids : int array;
  mutable names : int array;  (* interned ids *)
  mutable args : int array;   (* [no_arg] when absent *)
  mutable next : int;
  mutable filled : bool;
  mutable dropped : int;
  intern_tbl : (string, int) Hashtbl.t;
  mutable intern_rev : string array;  (* id -> string, grown on demand *)
  mutable n_interned : int;
  proc_names : (int, string) Hashtbl.t;
  thread_names : (int * int, string) Hashtbl.t;
}

let initial_alloc = 4096

let create ?(capacity = 1_000_000) () =
  let cap = max 1 capacity in
  let alloc = min cap initial_alloc in
  {
    cap;
    kinds = Array.make alloc Span;
    tss = Array.make alloc 0;
    durs = Array.make alloc 0;
    pids = Array.make alloc 0;
    tids = Array.make alloc 0;
    names = Array.make alloc 0;
    args = Array.make alloc no_arg;
    next = 0;
    filled = false;
    dropped = 0;
    intern_tbl = Hashtbl.create 64;
    intern_rev = Array.make 64 "";
    n_interned = 0;
    proc_names = Hashtbl.create 8;
    thread_names = Hashtbl.create 64;
  }

let capacity t = t.cap

let grow t =
  let cur = Array.length t.tss in
  let bigger = min t.cap (2 * cur) in
  let g fill a =
    let b = Array.make bigger fill in
    Array.blit a 0 b 0 cur;
    b
  in
  t.kinds <- g Span t.kinds;
  t.tss <- g 0 t.tss;
  t.durs <- g 0 t.durs;
  t.pids <- g 0 t.pids;
  t.tids <- g 0 t.tids;
  t.names <- g 0 t.names;
  t.args <- g no_arg t.args

let intern t s =
  match Hashtbl.find_opt t.intern_tbl s with
  | Some id -> id
  | None ->
      let id = t.n_interned in
      if id >= Array.length t.intern_rev then begin
        let bigger = Array.make (2 * Array.length t.intern_rev) "" in
        Array.blit t.intern_rev 0 bigger 0 id;
        t.intern_rev <- bigger
      end;
      t.intern_rev.(id) <- s;
      t.n_interned <- id + 1;
      Hashtbl.add t.intern_tbl s id;
      id

let push t kind ~ts ~dur ~pid ~tid ~name ~arg =
  if t.next = Array.length t.tss && t.next < t.cap then grow t;
  let i = t.next in
  if t.filled then t.dropped <- t.dropped + 1;
  t.kinds.(i) <- kind;
  t.tss.(i) <- ts;
  t.durs.(i) <- dur;
  t.pids.(i) <- pid;
  t.tids.(i) <- tid;
  t.names.(i) <- name;
  t.args.(i) <- arg;
  let j = i + 1 in
  if j = t.cap then begin
    t.next <- 0;
    t.filled <- true
  end
  else t.next <- j

let span t ~ts ~dur ~pid ~tid ~name ~arg = push t Span ~ts ~dur ~pid ~tid ~name ~arg
let instant t ~ts ~pid ~tid ~name ~arg = push t Instant ~ts ~dur:0 ~pid ~tid ~name ~arg
let counter t ~ts ~pid ~name ~value = push t Counter ~ts ~dur:0 ~pid ~tid:0 ~name ~arg:value

let length t = if t.filled then t.cap else t.next
let dropped t = t.dropped
let recorded t = length t + t.dropped

let iter t f =
  let n = length t in
  let start = if t.filled then t.next else 0 in
  for k = 0 to n - 1 do
    let i = (start + k) mod t.cap in
    f
      {
        kind = t.kinds.(i);
        ts = t.tss.(i);
        dur = t.durs.(i);
        pid = t.pids.(i);
        tid = t.tids.(i);
        name = t.intern_rev.(t.names.(i));
        arg = (if t.args.(i) = no_arg then None else Some t.args.(i));
      }
  done

let set_process_name t ~pid name = Hashtbl.replace t.proc_names pid name
let set_thread_name t ~pid ~tid name = Hashtbl.replace t.thread_names (pid, tid) name

(* --- Chrome trace-event export ----------------------------------------- *)

let json_string ppf s =
  Format.pp_print_char ppf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Format.pp_print_string ppf "\\\""
      | '\\' -> Format.pp_print_string ppf "\\\\"
      | '\n' -> Format.pp_print_string ppf "\\n"
      | '\t' -> Format.pp_print_string ppf "\\t"
      | c when Char.code c < 0x20 -> Format.fprintf ppf "\\u%04x" (Char.code c)
      | c -> Format.pp_print_char ppf c)
    s;
  Format.pp_print_char ppf '"'

let pp_events ppf ~sep t =
  (* Metadata first so viewers label tracks before any event references them. *)
  let procs = Hashtbl.fold (fun pid name acc -> (pid, name) :: acc) t.proc_names [] in
  List.iter
    (fun (pid, name) ->
      sep ();
      Format.fprintf ppf
        "{\"ph\": \"M\", \"pid\": %d, \"tid\": 0, \"name\": \"process_name\", \
         \"args\": {\"name\": %a}}"
        pid json_string name)
    (List.sort compare procs);
  let threads =
    Hashtbl.fold (fun (pid, tid) name acc -> (pid, tid, name) :: acc) t.thread_names []
  in
  List.iter
    (fun (pid, tid, name) ->
      sep ();
      Format.fprintf ppf
        "{\"ph\": \"M\", \"pid\": %d, \"tid\": %d, \"name\": \"thread_name\", \
         \"args\": {\"name\": %a}}"
        pid tid json_string name)
    (List.sort compare threads);
  iter t (fun r ->
      sep ();
      match r.kind with
      | Span ->
          Format.fprintf ppf
            "{\"ph\": \"X\", \"ts\": %d, \"dur\": %d, \"pid\": %d, \"tid\": %d, \
             \"name\": %a"
            r.ts r.dur r.pid r.tid json_string r.name;
          (match r.arg with
          | Some v -> Format.fprintf ppf ", \"args\": {\"value\": %d}}" v
          | None -> Format.fprintf ppf "}")
      | Instant ->
          Format.fprintf ppf
            "{\"ph\": \"i\", \"ts\": %d, \"pid\": %d, \"tid\": %d, \"s\": \"t\", \
             \"name\": %a"
            r.ts r.pid r.tid json_string r.name;
          (match r.arg with
          | Some v -> Format.fprintf ppf ", \"args\": {\"value\": %d}}" v
          | None -> Format.fprintf ppf "}")
      | Counter ->
          let v = match r.arg with Some v -> v | None -> 0 in
          Format.fprintf ppf
            "{\"ph\": \"C\", \"ts\": %d, \"pid\": %d, \"name\": %a, \
             \"args\": {%a: %d}}"
            r.ts r.pid json_string r.name json_string r.name v)

let export_chrome ppf t =
  let first = ref true in
  let sep () = if !first then first := false else Format.fprintf ppf ",@," in
  Format.fprintf ppf "@[<v 1>{@,\"traceEvents\": @[<v 1>[@,";
  pp_events ppf ~sep t;
  Format.fprintf ppf "@]@,],@,\"displayTimeUnit\": \"ns\"@]@,}@."

let export_chrome_events ppf t =
  pp_events ppf ~sep:(fun () -> Format.fprintf ppf ",@,") t
