(** Minimal JSON parser and Chrome trace-event schema check, used by
    `regmutex trace --check` and the test suite (no external JSON
    dependency is available in the toolchain). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

(** @raise Failure with position info on malformed input. *)
val parse : string -> json

val parse_opt : string -> (json, string) result

(** Single-line rendering (no interior newlines, so a printed value is a
    valid frame of a line-delimited protocol). [parse (to_string j)]
    recovers [j] up to float formatting: integral [Num]s print without a
    fraction, others with enough digits to round-trip. Non-finite [Num]s
    (JSON has no NaN/Infinity literal) print as [null], so the output is
    always syntactically valid JSON. *)
val to_string : json -> string

val pp : Format.formatter -> json -> unit

(** [validate_chrome_trace s] parses [s] and checks the Chrome
    trace-event schema: a top-level object with a ["traceEvents"] array
    whose every element has a one-char ["ph"] in [{X, i, C, M, B, E}], a
    numeric ["pid"], a string ["name"], a numeric ["ts"] (except
    [ph = "M"]), a numeric ["tid"] for [X]/[i]/[B]/[E], and a numeric
    ["dur"] for [X]. Returns [Ok n] with the event count, or the first
    violation. *)
val validate_chrome_trace : string -> (int, string) result
