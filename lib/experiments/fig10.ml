module Runner = Regmutex.Runner
module Technique = Regmutex.Technique

let es_values = [ 2; 4; 6; 8; 10; 12 ]

type row = {
  app : string;
  by_es : (int * float option) list;
  heuristic_es : int option;
}

let reduction_for cfg spec baseline es =
  let run = Engine.run ~es_override:es cfg ~arch:cfg.Exp_config.arch Technique.Regmutex spec in
  (* An infeasible override falls back to baseline behaviour with no
     heuristic choice recorded; report it as absent. *)
  match run.Runner.prepared.Technique.choice with
  | None -> None
  | Some _ -> Some (Runner.reduction_pct ~baseline run)

let row_of cfg spec =
  let arch = cfg.Exp_config.arch in
  let baseline = Engine.run cfg ~arch Technique.Baseline spec in
  let auto = Engine.run cfg ~arch Technique.Regmutex spec in
  {
    app = spec.Workloads.Spec.name;
    by_es = List.map (fun es -> (es, reduction_for cfg spec baseline es)) es_values;
    heuristic_es =
      Option.map
        (fun c -> c.Regmutex.Es_heuristic.es)
        auto.Runner.prepared.Technique.choice;
  }

let cells cfg spec =
  let arch = cfg.Exp_config.arch in
  Engine.cell ~arch Technique.Baseline spec
  :: Engine.cell ~arch Technique.Regmutex spec
  :: List.map (fun es -> Engine.cell ~es_override:es ~arch Technique.Regmutex spec) es_values

let rows cfg =
  Engine.prefetch cfg (List.concat_map (cells cfg) Workloads.Registry.occupancy_limited);
  List.map (row_of cfg) Workloads.Registry.occupancy_limited

let cell heuristic_es (es, red) =
  let mark = if heuristic_es = Some es then "*" else "" in
  match red with None -> "-" | Some r -> Table.pct r ^ mark

let print cfg =
  let rows = rows cfg in
  print_endline "Figure 10: cycle reduction vs |Es| (* = heuristic pick)";
  print_endline
    (Table.render
       ~columns:
         (("app", Table.Left)
         :: List.map (fun es -> (Printf.sprintf "|Es|=%d" es, Table.Right)) es_values)
       (List.map
          (fun r -> r.app :: List.map (cell r.heuristic_es) r.by_es)
          rows))
