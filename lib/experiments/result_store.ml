module Runner = Regmutex.Runner

type stats = {
  entries : int;
  bytes : int;
  limit_bytes : int option;
  evictions : int;
  version : string;
}

(* Results are versioned by a schema tag plus the simulator's git-describe:
   a rebuilt simulator writes into a fresh directory, so stale results are
   never replayed and need no explicit invalidation scan. *)
let schema_version = 1

let simulator_version =
  lazy
    (try
       let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
       let line = try String.trim (input_line ic) with End_of_file -> "" in
       ignore (Unix.close_process_in ic);
       if line = "" then "unversioned" else line
     with _ -> "unversioned")

let version_tag () =
  Printf.sprintf "v%d-%s" schema_version (Lazy.force simulator_version)

(* --- index state ------------------------------------------------------- *)

type entry = { mutable e_bytes : int; mutable e_seq : int }

let lock = Mutex.create ()
let root_ref = ref None
let limit_ref = ref None
let index : (string, entry) Hashtbl.t = Hashtbl.create 64
let pins : (string, int) Hashtbl.t = Hashtbl.create 16
let next_seq = ref 1
let evictions = ref 0
let loaded = ref false

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let version_dir root = Filename.concat root (version_tag ())
let digest_of_key k = Digest.to_hex (Digest.string k)
let file_of_digest root d = Filename.concat (version_dir root) (d ^ ".run")
let index_file root = Filename.concat (version_dir root) "INDEX"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The index is tiny (one short line per entry); rewriting it atomically
   on each mutation is cheaper than being clever and keeps it crash-safe. *)
let persist_index root =
  try
    mkdir_p (version_dir root);
    let tmp = Printf.sprintf "%s.%d.tmp" (index_file root) (Unix.getpid ()) in
    let oc = open_out tmp in
    Hashtbl.iter
      (fun d e -> Printf.fprintf oc "%s %d %d\n" d e.e_bytes e.e_seq)
      index;
    close_out oc;
    Sys.rename tmp (index_file root)
  with Sys_error _ | Unix.Unix_error _ -> ()

let load_index root =
  Hashtbl.reset index;
  next_seq := 1;
  (try
     let ic = open_in (index_file root) in
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () ->
         try
           while true do
             let line = input_line ic in
             match String.split_on_char ' ' (String.trim line) with
             | [ d; bytes; seq ] -> (
                 match (int_of_string_opt bytes, int_of_string_opt seq) with
                 | Some b, Some s ->
                     if Sys.file_exists (file_of_digest root d) then begin
                       Hashtbl.replace index d { e_bytes = b; e_seq = s };
                       if s >= !next_seq then next_seq := s + 1
                     end
                 | _ -> ())
             | _ -> ()
           done
         with End_of_file -> ())
   with Sys_error _ -> ());
  (* Adopt files the index does not know (written by a pre-LRU build or a
     concurrent process): size from stat, last-use 0 — evicted first. *)
  (try
     Array.iter
       (fun name ->
         if Filename.check_suffix name ".run" then begin
           let d = Filename.chop_suffix name ".run" in
           if not (Hashtbl.mem index d) then
             try
               let st = Unix.stat (file_of_digest root d) in
               Hashtbl.replace index d
                 { e_bytes = st.Unix.st_size; e_seq = 0 }
             with Unix.Unix_error _ -> ()
         end)
       (Sys.readdir (version_dir root))
   with Sys_error _ -> ());
  loaded := true

let ensure_loaded root = if not !loaded then load_index root

let touch d =
  match Hashtbl.find_opt index d with
  | None -> ()
  | Some e ->
      e.e_seq <- !next_seq;
      incr next_seq

let total_bytes () = Hashtbl.fold (fun _ e acc -> acc + e.e_bytes) index 0

let pinned_digests () =
  let s = Hashtbl.create 16 in
  Hashtbl.iter (fun k n -> if n > 0 then Hashtbl.replace s (digest_of_key k) ()) pins;
  s

let evict_to_limit root =
  match !limit_ref with
  | None -> ()
  | Some limit ->
      let pinned = pinned_digests () in
      let rec go () =
        if total_bytes () > limit then begin
          let victim =
            Hashtbl.fold
              (fun d e acc ->
                if Hashtbl.mem pinned d then acc
                else
                  match acc with
                  | Some (_, best) when best.e_seq <= e.e_seq -> acc
                  | _ -> Some (d, e))
              index None
          in
          match victim with
          | None -> () (* everything pinned: over budget, but never unsafe *)
          | Some (d, _) ->
              (try Sys.remove (file_of_digest root d) with Sys_error _ -> ());
              Hashtbl.remove index d;
              incr evictions;
              go ()
        end
      in
      go ()

(* --- public API -------------------------------------------------------- *)

let set_root dir =
  locked (fun () ->
      root_ref := dir;
      loaded := false)

let root () = locked (fun () -> !root_ref)

let set_limit_bytes l = locked (fun () -> limit_ref := l)

let limit_bytes () = locked (fun () -> !limit_ref)

let pin k =
  locked (fun () ->
      Hashtbl.replace pins k (1 + Option.value ~default:0 (Hashtbl.find_opt pins k)))

let unpin k =
  locked (fun () ->
      match Hashtbl.find_opt pins k with
      | Some n when n > 1 -> Hashtbl.replace pins k (n - 1)
      | Some _ -> Hashtbl.remove pins k
      | None -> ())

let load k =
  locked (fun () ->
      match !root_ref with
      | None -> None
      | Some root -> (
          ensure_loaded root;
          let d = digest_of_key k in
          let path = file_of_digest root d in
          if not (Sys.file_exists path) then None
          else
            try
              let ic = open_in_bin path in
              let result =
                Fun.protect
                  ~finally:(fun () -> close_in_noerr ic)
                  (fun () ->
                    let stored_key, run =
                      (Marshal.from_channel ic : string * Runner.run)
                    in
                    (* The file name is a digest; storing the key guards
                       against the (unlikely) digest collision. *)
                    if String.equal stored_key k then Some run else None)
              in
              if result <> None then begin
                if not (Hashtbl.mem index d) then begin
                  let st = Unix.stat path in
                  Hashtbl.replace index d
                    { e_bytes = st.Unix.st_size; e_seq = 0 }
                end;
                touch d;
                persist_index root
              end;
              result
            with _ -> None))

let store k run =
  locked (fun () ->
      match !root_ref with
      | None -> ()
      | Some root -> (
          ensure_loaded root;
          let d = digest_of_key k in
          let path = file_of_digest root d in
          try
            mkdir_p (Filename.dirname path);
            let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
            let oc = open_out_bin tmp in
            Marshal.to_channel oc (k, run) [];
            close_out oc;
            Sys.rename tmp path;
            let bytes = (Unix.stat path).Unix.st_size in
            (match Hashtbl.find_opt index d with
            | Some e -> e.e_bytes <- bytes
            | None -> Hashtbl.replace index d { e_bytes = bytes; e_seq = 0 });
            touch d;
            evict_to_limit root;
            persist_index root
          with Sys_error _ | Unix.Unix_error _ -> ()))

let rec remove_tree path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      let files, bytes =
        Array.fold_left
          (fun (f, b) name ->
            let f', b' = remove_tree (Filename.concat path name) in
            (f + f', b + b'))
          (0, 0) (Sys.readdir path)
      in
      (try Unix.rmdir path with Unix.Unix_error _ -> ());
      (files, bytes)
  | _ ->
      let bytes = try (Unix.stat path).Unix.st_size with _ -> 0 in
      (try Sys.remove path with Sys_error _ -> ());
      (1, bytes)
  | exception Unix.Unix_error _ -> (0, 0)

let compact () =
  locked (fun () ->
      match !root_ref with
      | None -> (0, 0)
      | Some root ->
          let current = version_tag () in
          Array.fold_left
            (fun (f, b) name ->
              let path = Filename.concat root name in
              if name <> current && Sys.is_directory path then begin
                let f', b' = remove_tree path in
                (f + f', b + b')
              end
              else (f, b))
            (0, 0)
            (try Sys.readdir root with Sys_error _ -> [||]))

let stats () =
  locked (fun () ->
      (match !root_ref with Some root -> ensure_loaded root | None -> ());
      {
        entries = Hashtbl.length index;
        bytes = total_bytes ();
        limit_bytes = !limit_ref;
        evictions = !evictions;
        version = version_tag ();
      })
