module Runner = Regmutex.Runner
module Technique = Regmutex.Technique

type row_a = {
  app : string;
  paired_red : float;
  default_red : float;
  occ_paired : float;
}

type row_b = {
  app : string;
  paired_inc : float;
  default_inc : float;
  occ_paired : float;
}

let row_a_of cfg spec =
  let arch = cfg.Exp_config.arch in
  let baseline = Engine.run cfg ~arch Technique.Baseline spec in
  let paired = Engine.run cfg ~arch Technique.Regmutex_paired spec in
  let default_rm = Engine.run cfg ~arch Technique.Regmutex spec in
  {
    app = spec.Workloads.Spec.name;
    paired_red = Runner.reduction_pct ~baseline paired;
    default_red = Runner.reduction_pct ~baseline default_rm;
    occ_paired = paired.Runner.theoretical_occupancy;
  }

let row_b_of cfg spec =
  let full = Engine.run cfg ~arch:cfg.Exp_config.arch Technique.Baseline spec in
  let paired = Engine.run cfg ~arch:cfg.Exp_config.half_arch Technique.Regmutex_paired spec in
  let default_rm = Engine.run cfg ~arch:cfg.Exp_config.half_arch Technique.Regmutex spec in
  {
    app = spec.Workloads.Spec.name;
    paired_inc = Runner.increase_pct ~baseline:full paired;
    default_inc = Runner.increase_pct ~baseline:full default_rm;
    occ_paired = paired.Runner.theoretical_occupancy;
  }

let rows_a cfg =
  let arch = cfg.Exp_config.arch in
  Engine.prefetch cfg
    (List.concat_map
       (fun spec ->
         [ Engine.cell ~arch Technique.Baseline spec;
           Engine.cell ~arch Technique.Regmutex_paired spec;
           Engine.cell ~arch Technique.Regmutex spec ])
       Workloads.Registry.occupancy_limited);
  List.map (row_a_of cfg) Workloads.Registry.occupancy_limited

let rows_b cfg =
  Engine.prefetch cfg
    (List.concat_map
       (fun spec ->
         [ Engine.cell ~arch:cfg.Exp_config.arch Technique.Baseline spec;
           Engine.cell ~arch:cfg.Exp_config.half_arch Technique.Regmutex_paired spec;
           Engine.cell ~arch:cfg.Exp_config.half_arch Technique.Regmutex spec ])
       Workloads.Registry.regfile_sensitive);
  List.map (row_b_of cfg) Workloads.Registry.regfile_sensitive

let print cfg =
  let a = rows_a cfg in
  print_endline "Figure 12(a): paired-warps specialization (baseline arch)";
  print_endline
    (Table.render
       ~columns:
         [ ("app", Table.Left); ("paired red.", Table.Right);
           ("default red.", Table.Right); ("occ paired", Table.Right) ]
       (List.map
          (fun (r : row_a) ->
            [ r.app; Table.pct r.paired_red; Table.pct r.default_red;
              Table.occ r.occ_paired ])
          a));
  Printf.printf "means: paired %s, default %s (paper: ~8%% vs ~12%%)\n\n"
    (Table.pct (Table.mean (List.map (fun (r : row_a) -> r.paired_red) a)))
    (Table.pct (Table.mean (List.map (fun (r : row_a) -> r.default_red) a)));
  let b = rows_b cfg in
  print_endline "Figure 12(b): paired-warps specialization (half register file)";
  print_endline
    (Table.render
       ~columns:
         [ ("app", Table.Left); ("paired incr", Table.Right);
           ("default incr", Table.Right); ("occ paired", Table.Right) ]
       (List.map
          (fun r ->
            [ r.app; Table.pct r.paired_inc; Table.pct r.default_inc;
              Table.occ r.occ_paired ])
          b));
  Printf.printf "means: paired %s, default %s (paper: ~17%% vs ~9%%)\n"
    (Table.pct (Table.mean (List.map (fun r -> r.paired_inc) b)))
    (Table.pct (Table.mean (List.map (fun r -> r.default_inc) b)))
