(** Memoized, parallel simulation runs with a persistent result store.

    Several figures share the same (architecture, technique, kernel)
    simulations — Figure 7's RegMutex runs reappear in Figures 9(a), 12(a)
    and 13 — so results are cached at two levels:

    - an in-memory table for the lifetime of the process;
    - optionally (see {!set_cache_dir}) an on-disk store with one file per
      cache key under [<dir>/v<schema>-<git-describe>/], so repeated CLI or
      figure runs skip simulation entirely. A rebuilt simulator gets a
      fresh version directory; stale results are never replayed.

    Batches of cells ({!prefetch}, {!run_batch}) are deduplicated and
    fanned out over worker domains (see {!set_jobs}); results are merged
    deterministically, so figure output is byte-identical to a serial run. *)

(** One simulation the engine can run: workload under a technique on an
    architecture, with optional |Es| override or full compile options.
    [variant] is a free-form label that keeps human-readable keys distinct
    when cells differ only in [options] (the ablations use it). *)
type cell

val cell :
  ?es_override:int ->
  ?options:Regmutex.Technique.options ->
  ?variant:string ->
  arch:Gpu_uarch.Arch_config.t ->
  Regmutex.Technique.t ->
  Workloads.Spec.t ->
  cell

(** Cache key of a cell: human-readable prefix (arch, technique, workload,
    |Es|, full-precision grid scale, variant) plus a digest of the entire
    architecture record and compile options, so configurations that differ
    in any parameter can never collide. *)
val key :
  ?es_override:int ->
  ?options:Regmutex.Technique.options ->
  ?variant:string ->
  Exp_config.t ->
  arch:Gpu_uarch.Arch_config.t ->
  Regmutex.Technique.t ->
  Workloads.Spec.t ->
  string

(** [run ?es_override ?options ?variant cfg ~arch technique spec] executes
    (or recalls) the simulation of [spec] under [technique] on [arch]. *)
val run :
  ?es_override:int ->
  ?options:Regmutex.Technique.options ->
  ?variant:string ->
  Exp_config.t ->
  arch:Gpu_uarch.Arch_config.t ->
  Regmutex.Technique.t ->
  Workloads.Spec.t ->
  Regmutex.Runner.run

(** Persistent worker pool: domains are spawned once at {!Pool.create}
    and reused across every {!Pool.map} / {!Pool.submit} until
    {!Pool.shutdown}, replacing the old spawn/join-per-call fan-out.
    {!parallel_map} (and through it {!prefetch} and the fuzz driver) runs
    on one process-wide shared pool ({!shared_pool}); the serve daemon
    feeds its job queue into the same pool. *)
module Pool : sig
  type t

  (** [create ~workers] spawns [workers] (>= 0) domains. A 0-worker pool
      is valid: jobs only run when the submitting domain participates
      through {!map}. *)
  val create : workers:int -> t

  val workers : t -> int

  (** Enqueue one asynchronous job; it runs on some worker (exceptions
      are swallowed — jobs that can fail must capture their own result).
      [?ctx] installs ambient {!Telemetry.Log} context fields around the
      job on whichever domain runs it, so log lines it emits carry the
      submitting request's id.
      @raise Invalid_argument after {!shutdown}. *)
  val submit : ?ctx:Telemetry.Log.field list -> t -> (unit -> unit) -> unit

  (** [map t tasks f] — blocking batch: the caller submits one job per
      task, participates in draining the queue, and waits for the batch.
      Results come back in submission order regardless of worker count —
      deterministic fan-out. A task that raises has its exception
      re-raised on the caller. *)
  val map : t -> 'a array -> ('a -> 'b) -> 'b array

  (** Stop accepting jobs, drain everything already queued, and join the
      worker domains. Idempotent. *)
  val shutdown : t -> unit
end

(** The process-wide pool, (re)sized to [workers] worker domains. An
    existing pool of another size is drained and replaced — except when
    called from a pool worker (a nested fan-out), which always reuses
    the pool it is running on. *)
val shared_pool : workers:int -> Pool.t

(** Drain and join the shared pool (no-op when none exists). *)
val shutdown_pool : unit -> unit

(** [parallel_map ~jobs tasks f] maps [f] over [tasks] with [jobs]-way
    parallelism on the shared persistent pool ([jobs - 1] workers plus
    the participating caller, so [jobs = 1] is serial on the caller).
    Results come back in submission order regardless of the worker
    count — deterministic fan-out. A task that raises has its exception
    re-raised on the coordinator. The sweep engine runs its missing
    cells through this; the fuzz driver reuses it for per-seed oracle
    runs. *)
val parallel_map : jobs:int -> 'a array -> ('a -> 'b) -> 'b array

(** [prefetch ?jobs cfg cells] simulates every cell not already cached,
    fanning the unique missing cells out over [jobs] worker domains
    (default {!jobs}; [0] means {!auto_jobs}). On return every cell is a
    cache hit. Figures call this up front so their row builders never
    simulate serially. *)
val prefetch : ?jobs:int -> Exp_config.t -> cell list -> unit

(** [run_batch ?jobs cfg cells] — {!prefetch} then the runs, in order. *)
val run_batch :
  ?jobs:int -> Exp_config.t -> cell list -> Regmutex.Runner.run list

(** Default worker-domain count for {!prefetch}. [set_jobs 0] (or any
    non-positive value) selects {!auto_jobs}. The default is 1: serial,
    exactly the behaviour of the pre-parallel engine. *)
val set_jobs : int -> unit

val jobs : unit -> int

(** Event-driven cycle skipping for every simulation the engine launches
    (default [true]). Semantics-preserving — results, fingerprints and
    cache keys are identical either way, so flipping it never invalidates
    the store; [set_fast_forward false] is the brute-force reference mode
    for the equivalence suite and the bench harness. *)
val set_fast_forward : bool -> unit

val fast_forward : unit -> bool

(** [Domain.recommended_domain_count () - 1] workers (at least 1), leaving
    one core for the coordinator. *)
val auto_jobs : unit -> int

(** Enable ([Some dir], conventionally ["_results"]) or disable ([None],
    the default) the persistent on-disk store. *)
val set_cache_dir : string option -> unit

val cache_dir : unit -> string option

(** Drop all in-memory cached runs (tests use this to control sharing).
    The on-disk store, if enabled, is untouched. *)
val clear : unit -> unit

(** {2 Daemon-facing primitives}

    The serve daemon separates the three steps [lookup] fuses, so cache
    probes and inserts stay on its coordinator thread while computes run
    on pool workers. *)

(** Full cache key of a cell (same as {!key}). *)
val key_of_cell : Exp_config.t -> cell -> string

(** Probe both cache layers (promoting a disk hit to memory); never
    simulates, never counts a miss. *)
val cached : Exp_config.t -> cell -> Regmutex.Runner.run option

(** Simulate unconditionally, bypassing both cache layers. Safe on any
    domain. [?telemetry] attaches a trace sink to the run (the serve
    daemon gives each cold compute a per-request sink so the simulation
    spans land in that request's merged trace). *)
val compute : ?telemetry:Telemetry.Sink.t -> Exp_config.t -> cell -> Regmutex.Runner.run

(** Record an externally-computed run in both cache layers, counting one
    simulation. *)
val insert : Exp_config.t -> cell -> Regmutex.Runner.run -> unit

(** Number of simulations actually executed by this process (misses in
    both cache layers). *)
val simulations : unit -> int
