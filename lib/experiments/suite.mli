(** Registry of every experiment in the evaluation — the tables, figures
    and ablations — shared by the benchmark harness and the CLI's [sweep]
    subcommand so the two never drift apart. *)

type entry = {
  name : string;  (** short id, e.g. ["fig7"] *)
  doc : string;   (** one-line description *)
  print : Exp_config.t -> unit;
}

(** Every experiment, in presentation order. *)
val all : entry list

val names : string list
val find : string -> entry option

(** Print each entry under a banner line. *)
val run : Exp_config.t -> entry list -> unit
