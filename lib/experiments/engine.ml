module Runner = Regmutex.Runner
module Technique = Regmutex.Technique
module Arch_config = Gpu_uarch.Arch_config

(* --- worker configuration ------------------------------------------- *)

let auto_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let default_jobs = ref 1

let set_jobs n = default_jobs := if n <= 0 then auto_jobs () else n

let jobs () = !default_jobs

(* Cycle skipping is semantics-preserving (results and cache entries are
   identical either way), so it is a process-wide toggle rather than part
   of the cache key; the bench harness flips it to time both modes. *)
let ff = ref true

let set_fast_forward b = ff := b

let fast_forward () = !ff

(* --- persistent store configuration ---------------------------------- *)

(* Results are versioned by a schema tag plus the simulator's git-describe:
   a rebuilt simulator writes into a fresh directory, so stale results are
   never replayed and need no explicit invalidation scan. *)
let schema_version = 1

let simulator_version =
  lazy
    (try
       let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
       let line = try String.trim (input_line ic) with End_of_file -> "" in
       ignore (Unix.close_process_in ic);
       if line = "" then "unversioned" else line
     with _ -> "unversioned")

let version_tag () =
  Printf.sprintf "v%d-%s" schema_version (Lazy.force simulator_version)

let cache_root = ref None

let set_cache_dir dir = cache_root := dir

let cache_dir () = !cache_root

(* --- cells and keys --------------------------------------------------- *)

type cell = {
  arch : Arch_config.t;
  technique : Technique.t;
  spec : Workloads.Spec.t;
  es_override : int option;
  options : Technique.options option;
  variant : string;
}

let cell ?es_override ?options ?(variant = "") ~arch technique spec =
  { arch; technique; spec; es_override; options; variant }

let resolved_options c =
  match c.options with
  | Some o -> (
      match c.es_override with
      | None -> o
      | Some _ -> { o with Technique.es_override = c.es_override })
  | None -> { Technique.default_options with Technique.es_override = c.es_override }

(* Both records are pure data, so their marshalled form is a stable
   fingerprint. It folds every architectural parameter (scheduler kind,
   register-file size, latencies, ...) and every compile option into the
   key — two cells may share an architecture *name* yet differ in the
   record, as the scheduler ablation's variants do. *)
let config_digest arch options =
  Digest.to_hex (Digest.string (Marshal.to_string (arch, options) []))

let key_of_cell cfg c =
  let options = resolved_options c in
  (* %h prints the float's full precision — "%.3f" would collide two grid
     scales closer than 1e-3 and silently return the wrong cached run. *)
  Printf.sprintf "%s/%s/%s/%s/%h/%s/%s" c.arch.Arch_config.name
    (Technique.name c.technique) c.spec.Workloads.Spec.name
    (match options.Technique.es_override with
    | None -> "auto"
    | Some es -> string_of_int es)
    cfg.Exp_config.grid_scale c.variant
    (String.sub (config_digest c.arch options) 0 12)

let key ?es_override ?options ?variant cfg ~arch technique spec =
  key_of_cell cfg (cell ?es_override ?options ?variant ~arch technique spec)

(* --- in-memory and on-disk caches ------------------------------------ *)

let cache : (string, Runner.run) Hashtbl.t = Hashtbl.create 64

let misses = Atomic.make 0

let simulations () = Atomic.get misses

let clear () = Hashtbl.reset cache

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let disk_path k =
  Option.map
    (fun root ->
      Filename.concat
        (Filename.concat root (version_tag ()))
        (Digest.to_hex (Digest.string k) ^ ".run"))
    !cache_root

let disk_load k =
  match disk_path k with
  | None -> None
  | Some path when not (Sys.file_exists path) -> None
  | Some path -> (
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let stored_key, run = (Marshal.from_channel ic : string * Runner.run) in
            (* The file name is a digest; storing the key guards against
               the (unlikely) digest collision. *)
            if String.equal stored_key k then Some run else None)
      with _ -> None)

let disk_store k run =
  match disk_path k with
  | None -> ()
  | Some path -> (
      try
        mkdir_p (Filename.dirname path);
        let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
        let oc = open_out_bin tmp in
        Marshal.to_channel oc (k, run) [];
        close_out oc;
        Sys.rename tmp path
      with Sys_error _ | Unix.Unix_error _ -> ())

(* --- execution -------------------------------------------------------- *)

(* The coordinator's result-merge phase; the per-run prepare/simulate
   phases live in [Runner]. Registered before any domain spawns. *)
let merge_phase = Telemetry.Profile.phase "engine.merge"

let compute cfg c =
  let options = resolved_options c in
  let kernel = Exp_config.kernel_of cfg c.spec in
  Runner.execute ~options ~fast_forward:!ff c.arch c.technique kernel

let lookup cfg c =
  let k = key_of_cell cfg c in
  match Hashtbl.find_opt cache k with
  | Some run -> run
  | None -> (
      match disk_load k with
      | Some run ->
          Hashtbl.replace cache k run;
          run
      | None ->
          Atomic.incr misses;
          let run = compute cfg c in
          Hashtbl.replace cache k run;
          disk_store k run;
          run)

let run ?es_override ?options ?variant cfg ~arch technique spec =
  lookup cfg (cell ?es_override ?options ?variant ~arch technique spec)

(* Work-queue fan-out: worker domains claim task indices through an atomic
   counter and write into disjoint slots of the result array, so the only
   shared mutable state is the counter itself. Each task is a full
   self-contained simulation (kernel, memory system, statistics are all
   per-run state). The coordinator participates as the last worker. *)
let parallel_map ~jobs tasks f =
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (try Ok (f tasks.(i)) with e -> Error e);
        go ()
      end
    in
    go ()
  in
  let d = max 1 (min jobs n) in
  let helpers = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join helpers;
  Array.map
    (function Some (Ok r) -> r | Some (Error e) -> raise e | None -> assert false)
    results

let prefetch ?jobs:requested cfg cells =
  let jobs =
    match requested with
    | Some n when n > 0 -> n
    | Some _ -> auto_jobs ()
    | None -> !default_jobs
  in
  (* Deduplicate by key and drop every cell either cache layer already
     holds; only genuinely missing cells are simulated. *)
  let queued = Hashtbl.create 16 in
  let pending =
    List.filter_map
      (fun c ->
        let k = key_of_cell cfg c in
        if Hashtbl.mem cache k || Hashtbl.mem queued k then None
        else
          match disk_load k with
          | Some run ->
              Hashtbl.replace cache k run;
              None
          | None ->
              Hashtbl.replace queued k ();
              Some (k, c))
      cells
  in
  if pending <> [] then begin
    let tasks = Array.of_list pending in
    let runs = parallel_map ~jobs tasks (fun (_, c) -> compute cfg c) in
    (* Merge on the coordinator, in submission order: figure output is
       byte-identical whatever the worker count or completion order. *)
    Telemetry.Profile.time merge_phase (fun () ->
        Array.iteri
          (fun i run ->
            let k, _ = tasks.(i) in
            Atomic.incr misses;
            Hashtbl.replace cache k run;
            disk_store k run)
          runs)
  end

let run_batch ?jobs cfg cells =
  prefetch ?jobs cfg cells;
  List.map (lookup cfg) cells
