module Runner = Regmutex.Runner
module Technique = Regmutex.Technique
module Arch_config = Gpu_uarch.Arch_config

(* --- worker configuration ------------------------------------------- *)

let auto_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let default_jobs = ref 1

let set_jobs n = default_jobs := if n <= 0 then auto_jobs () else n

let jobs () = !default_jobs

(* Cycle skipping is semantics-preserving (results and cache entries are
   identical either way), so it is a process-wide toggle rather than part
   of the cache key; the bench harness flips it to time both modes. *)
let ff = ref true

let set_fast_forward b = ff := b

let fast_forward () = !ff

(* --- persistent worker pool ------------------------------------------- *)

(* True on any domain currently executing pool jobs: a nested fan-out
   (e.g. a suite job on the serve daemon calling [prefetch]) must reuse
   the pool it runs on rather than resize it out from under itself. *)
let on_pool_worker = Domain.DLS.new_key (fun () -> false)

module Pool = struct
  type t = {
    queue : (unit -> unit) Queue.t;
    mutex : Mutex.t;
    nonempty : Condition.t;
    mutable stopping : bool;
    mutable domains : unit Domain.t list;
    n_workers : int;
  }

  (* Workers drain the queue before exiting, so [shutdown] never drops
     submitted jobs. *)
  let worker_loop t =
    Domain.DLS.set on_pool_worker true;
    let rec go () =
      Mutex.lock t.mutex;
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.nonempty t.mutex
      done;
      if Queue.is_empty t.queue then Mutex.unlock t.mutex
      else begin
        let job = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        (try job () with _ -> ());
        go ()
      end
    in
    go ()

  let create ~workers =
    let workers = max 0 workers in
    let t =
      {
        queue = Queue.create ();
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        stopping = false;
        domains = [];
        n_workers = workers;
      }
    in
    t.domains <-
      List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
    t

  let workers t = t.n_workers

  let submit ?ctx t job =
    (* [ctx] rides along to the worker domain as ambient logging context
       (request id and friends), so every log line the job emits carries
       the fields of the request that submitted it. *)
    let job =
      match ctx with
      | None | Some [] -> job
      | Some fields -> fun () -> Telemetry.Log.with_ctx fields job
    in
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Engine.Pool.submit: pool is shut down"
    end;
    Queue.push job t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex

  (* Run one queued job on the calling domain; false when the queue is
     empty. The submitting domain participates in its own batches, so a
     0-worker pool is simply the serial engine. *)
  let try_run_one t =
    Mutex.lock t.mutex;
    if Queue.is_empty t.queue then begin
      Mutex.unlock t.mutex;
      false
    end
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      (try job () with _ -> ());
      true
    end

  let map t tasks f =
    let n = Array.length tasks in
    let results = Array.make n None in
    if n > 0 then begin
      let remaining = Atomic.make n in
      let done_m = Mutex.create () in
      let done_c = Condition.create () in
      let run i =
        results.(i) <- Some (try Ok (f tasks.(i)) with e -> Error e);
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock done_m;
          Condition.broadcast done_c;
          Mutex.unlock done_m
        end
      in
      for i = 0 to n - 1 do
        submit t (fun () -> run i)
      done;
      (* Participate: drain queued jobs (possibly other batches') until
         empty, then wait for stragglers running on other domains. *)
      while try_run_one t do () done;
      Mutex.lock done_m;
      while Atomic.get remaining > 0 do
        Condition.wait done_c done_m
      done;
      Mutex.unlock done_m
    end;
    Array.map
      (function
        | Some (Ok r) -> r
        | Some (Error e) -> raise e
        | None -> assert false)
      results

  let shutdown t =
    Mutex.lock t.mutex;
    let already = t.stopping in
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    if not already then begin
      List.iter Domain.join t.domains;
      t.domains <- [];
      (* A 0-worker pool has nobody else to drain residual jobs. *)
      while try_run_one t do () done
    end
end

(* One process-wide pool, sized on demand: repeated [parallel_map] calls
   reuse the same worker domains instead of paying spawn/join per call. *)
let pool_lock = Mutex.create ()

let the_pool : Pool.t option ref = ref None

let shared_pool ~workers =
  Mutex.lock pool_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock pool_lock)
    (fun () ->
      match !the_pool with
      | Some p
        when Pool.workers p = workers || Domain.DLS.get on_pool_worker ->
          (* A nested call from a worker keeps the current pool whatever
             size was asked for — resizing would join our own domain. *)
          p
      | prev ->
          (match prev with Some p -> Pool.shutdown p | None -> ());
          let p = Pool.create ~workers in
          the_pool := Some p;
          p)

let shutdown_pool () =
  Mutex.lock pool_lock;
  let p = !the_pool in
  the_pool := None;
  Mutex.unlock pool_lock;
  match p with Some p -> Pool.shutdown p | None -> ()

(* --- persistent store configuration ---------------------------------- *)

let set_cache_dir dir = Result_store.set_root dir

let cache_dir () = Result_store.root ()

(* --- cells and keys --------------------------------------------------- *)

type cell = {
  arch : Arch_config.t;
  technique : Technique.t;
  spec : Workloads.Spec.t;
  es_override : int option;
  options : Technique.options option;
  variant : string;
}

let cell ?es_override ?options ?(variant = "") ~arch technique spec =
  { arch; technique; spec; es_override; options; variant }

let resolved_options c =
  match c.options with
  | Some o -> (
      match c.es_override with
      | None -> o
      | Some _ -> { o with Technique.es_override = c.es_override })
  | None -> { Technique.default_options with Technique.es_override = c.es_override }

(* Both records are pure data, so their marshalled form is a stable
   fingerprint. It folds every architectural parameter (scheduler kind,
   register-file size, latencies, ...) and every compile option into the
   key — two cells may share an architecture *name* yet differ in the
   record, as the scheduler ablation's variants do. *)
let config_digest arch options =
  Digest.to_hex (Digest.string (Marshal.to_string (arch, options) []))

let key_of_cell cfg c =
  let options = resolved_options c in
  (* %h prints the float's full precision — "%.3f" would collide two grid
     scales closer than 1e-3 and silently return the wrong cached run. *)
  Printf.sprintf "%s/%s/%s/%s/%h/%s/%s" c.arch.Arch_config.name
    (Technique.name c.technique) c.spec.Workloads.Spec.name
    (match options.Technique.es_override with
    | None -> "auto"
    | Some es -> string_of_int es)
    cfg.Exp_config.grid_scale c.variant
    (String.sub (config_digest c.arch options) 0 12)

let key ?es_override ?options ?variant cfg ~arch technique spec =
  key_of_cell cfg (cell ?es_override ?options ?variant ~arch technique spec)

(* --- in-memory and on-disk caches ------------------------------------ *)

(* The in-memory table is shared by every domain that runs cells (the
   serve daemon's suite jobs call [run] from pool workers), so accesses
   go through one mutex. Computation never happens under the lock. *)
let cache : (string, Runner.run) Hashtbl.t = Hashtbl.create 64

let cache_lock = Mutex.create ()

let with_cache f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let mem_find k = with_cache (fun () -> Hashtbl.find_opt cache k)

let mem_add k run = with_cache (fun () -> Hashtbl.replace cache k run)

let mem_mem k = with_cache (fun () -> Hashtbl.mem cache k)

let misses = Atomic.make 0

let simulations () = Atomic.get misses

let clear () = with_cache (fun () -> Hashtbl.reset cache)

(* --- execution -------------------------------------------------------- *)

(* The coordinator's result-merge phase; the per-run prepare/simulate
   phases live in [Runner]. Registered before any domain spawns. *)
let merge_phase = Telemetry.Profile.phase "engine.merge"

let compute ?telemetry cfg c =
  let options = resolved_options c in
  let kernel = Exp_config.kernel_of cfg c.spec in
  Runner.execute ?telemetry ~options ~fast_forward:!ff c.arch c.technique kernel

let cached cfg c =
  let k = key_of_cell cfg c in
  match mem_find k with
  | Some run -> Some run
  | None -> (
      match Result_store.load k with
      | Some run ->
          mem_add k run;
          Some run
      | None -> None)

let insert cfg c run =
  let k = key_of_cell cfg c in
  Atomic.incr misses;
  mem_add k run;
  Result_store.store k run

let lookup cfg c =
  let k = key_of_cell cfg c in
  match mem_find k with
  | Some run -> run
  | None -> (
      match Result_store.load k with
      | Some run ->
          mem_add k run;
          run
      | None ->
          Atomic.incr misses;
          let run = compute cfg c in
          mem_add k run;
          Result_store.store k run;
          run)

let run ?es_override ?options ?variant cfg ~arch technique spec =
  lookup cfg (cell ?es_override ?options ?variant ~arch technique spec)

(* Work-queue fan-out on the shared persistent pool: jobs claim indices
   and write into disjoint slots of the result array, so results come
   back in submission order whatever the worker count. Each task is a
   full self-contained simulation (kernel, memory system, statistics are
   all per-run state). [jobs = 1] is a 0-worker pool: the coordinator
   runs everything itself, exactly the serial engine. *)
let parallel_map ~jobs tasks f =
  let workers = max 0 (min jobs (Array.length tasks) - 1) in
  Pool.map (shared_pool ~workers) tasks f

let prefetch ?jobs:requested cfg cells =
  let jobs =
    match requested with
    | Some n when n > 0 -> n
    | Some _ -> auto_jobs ()
    | None -> !default_jobs
  in
  (* Deduplicate by key and drop every cell either cache layer already
     holds; only genuinely missing cells are simulated. *)
  let queued = Hashtbl.create 16 in
  let pending =
    List.filter_map
      (fun c ->
        let k = key_of_cell cfg c in
        if mem_mem k || Hashtbl.mem queued k then None
        else
          match Result_store.load k with
          | Some run ->
              mem_add k run;
              None
          | None ->
              Hashtbl.replace queued k ();
              Some (k, c))
      cells
  in
  if pending <> [] then begin
    let tasks = Array.of_list pending in
    let runs = parallel_map ~jobs tasks (fun (_, c) -> compute cfg c) in
    (* Merge on the coordinator, in submission order: figure output is
       byte-identical whatever the worker count or completion order. *)
    Telemetry.Profile.time merge_phase (fun () ->
        Array.iteri
          (fun i run ->
            let k, _ = tasks.(i) in
            Atomic.incr misses;
            mem_add k run;
            Result_store.store k run)
          runs)
  end

let run_batch ?jobs cfg cells =
  prefetch ?jobs cfg cells;
  List.map (lookup cfg) cells
