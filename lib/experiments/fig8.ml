module Runner = Regmutex.Runner
module Technique = Regmutex.Technique

type row = {
  app : string;
  full_cycles : int;
  half_cycles : int;
  half_rm_cycles : int;
  increase_none_pct : float;
  increase_rm_pct : float;
  occ_half : float;
  occ_half_rm : float;
}

let row_of cfg spec =
  let full = Engine.run cfg ~arch:cfg.Exp_config.arch Technique.Baseline spec in
  let half = Engine.run cfg ~arch:cfg.Exp_config.half_arch Technique.Baseline spec in
  let half_rm = Engine.run cfg ~arch:cfg.Exp_config.half_arch Technique.Regmutex spec in
  {
    app = spec.Workloads.Spec.name;
    full_cycles = full.Runner.cycles;
    half_cycles = half.Runner.cycles;
    half_rm_cycles = half_rm.Runner.cycles;
    increase_none_pct = Runner.increase_pct ~baseline:full half;
    increase_rm_pct = Runner.increase_pct ~baseline:full half_rm;
    occ_half = half.Runner.theoretical_occupancy;
    occ_half_rm = half_rm.Runner.theoretical_occupancy;
  }

let rows cfg =
  Engine.prefetch cfg
    (List.concat_map
       (fun spec ->
         [ Engine.cell ~arch:cfg.Exp_config.arch Technique.Baseline spec;
           Engine.cell ~arch:cfg.Exp_config.half_arch Technique.Baseline spec;
           Engine.cell ~arch:cfg.Exp_config.half_arch Technique.Regmutex spec ])
       Workloads.Registry.regfile_sensitive);
  List.map (row_of cfg) Workloads.Registry.regfile_sensitive

let print cfg =
  let rows = rows cfg in
  print_endline "Figure 8: half-size register file, with and without RegMutex";
  print_endline
    (Table.render
       ~columns:
         [ ("app", Table.Left); ("full cyc", Table.Right); ("half cyc", Table.Right);
           ("half+rm", Table.Right); ("incr none", Table.Right);
           ("incr rm", Table.Right); ("occ half", Table.Right);
           ("occ rm", Table.Right) ]
       (List.map
          (fun r ->
            [ r.app; Table.int_cell r.full_cycles; Table.int_cell r.half_cycles;
              Table.int_cell r.half_rm_cycles; Table.pct r.increase_none_pct;
              Table.pct r.increase_rm_pct; Table.occ r.occ_half;
              Table.occ r.occ_half_rm ])
          rows));
  Printf.printf "mean cycle increase: none %s, RegMutex %s (paper: ~23%% vs ~9%%)\n"
    (Table.pct (Table.mean (List.map (fun r -> r.increase_none_pct) rows)))
    (Table.pct (Table.mean (List.map (fun r -> r.increase_rm_pct) rows)))
