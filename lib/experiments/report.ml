module J = Telemetry.Json_check

type metric = {
  key : string;
  value : float;
  higher_better : bool;
  config : string;
}

type invariant = { inv_key : string; ok : bool }

type snapshot = {
  metrics : metric list;
  invariants : invariant list;
  sources : string list;
}

let find_repo_root ?start () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent
  in
  let start = match start with Some d -> d | None -> Sys.getcwd () in
  (* Relative starts would stop at "." before reaching any ancestor. *)
  let start =
    if Filename.is_relative start then Filename.concat (Sys.getcwd ()) start
    else start
  in
  up start

(* --- field accessors over Json_check values ------------------------- *)

let field obj name =
  match obj with
  | J.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let num obj name =
  match field obj name with Some (J.Num f) -> Some f | _ -> None

let str obj name =
  match field obj name with Some (J.Str s) -> Some s | _ -> None

let boolean obj name =
  match field obj name with Some (J.Bool b) -> Some b | _ -> None

let config_of obj = Option.value (str obj "config") ~default:""

(* --- per-kind normalization ----------------------------------------- *)

(* Each extractor returns the metrics and invariants one artifact
   contributes. Keys are "<bench>.<metric>" so artifacts never collide
   and a reader can trace a number back to its file. Fields that are
   null or absent (e.g. soa_core's seed comparison when no seed
   fingerprints were committed) are simply not contributed. *)

let metric ?(higher_better = true) ~config key value =
  { key; value; higher_better; config }

let extract_cycle_skip j =
  let config = config_of j in
  let ms =
    match num j "max_speedup" with
    | Some v -> [ metric ~config "cycle_skip.max_speedup" v ]
    | None -> []
  in
  let invs =
    match boolean j "all_identical" with
    | Some ok -> [ { inv_key = "cycle_skip.all_identical"; ok } ]
    | None -> []
  in
  (ms, invs)

let extract_soa_core j =
  let config = config_of j in
  let ms =
    List.filter_map
      (fun name ->
        Option.map (fun v -> metric ~config ("soa_core." ^ name) v) (num j name))
      [ "geomean_speedup_compute"; "geomean_speedup_latency" ]
  in
  let invs =
    List.filter_map
      (fun name ->
        Option.map
          (fun ok -> { inv_key = "soa_core." ^ name; ok })
          (boolean j name))
      [ "all_identical"; "seed_identical" ]
  in
  (ms, invs)

let extract_telemetry_overhead j =
  let config = config_of j in
  let ms =
    match num j "overhead_on_pct" with
    | Some pct ->
        (* Overhead is a cost: fold it into a lower-is-better slowdown
           factor so a 0% overhead scores 1.0 and regressions divide. *)
        [
          metric ~higher_better:false ~config "telemetry_overhead.factor"
            (1. +. (pct /. 100.));
        ]
    | None -> []
  in
  let invs =
    match boolean j "all_identical" with
    | Some ok -> [ { inv_key = "telemetry_overhead.all_identical"; ok } ]
    | None -> []
  in
  (ms, invs)

let extract_regdem j =
  let config = config_of j in
  let ms =
    List.filter_map
      (fun (name, higher_better) ->
        Option.map
          (fun v -> metric ~higher_better ~config ("regdem." ^ name) v)
          (num j name))
      (* Occupancy bought is the win; the energy factor is a cost. *)
      [ ("mean_occupancy_gain", true); ("mean_energy_factor", false) ]
  in
  let invs =
    List.filter_map
      (fun name ->
        Option.map
          (fun ok -> { inv_key = "regdem." ^ name; ok })
          (boolean j name))
      [ "all_identical"; "demotion_applied" ]
  in
  (ms, invs)

let extract_simt j =
  let config = config_of j in
  let ms =
    match num j "overhead_factor" with
    | Some v ->
        (* The wall-time price of lane-resolved execution: a cost, so
           lower is better (1.0 would be a free lane dimension). *)
        [ metric ~higher_better:false ~config "simt.overhead_factor" v ]
    | None -> []
  in
  let invs =
    List.filter_map
      (fun name ->
        Option.map
          (fun ok -> { inv_key = "simt." ^ name; ok })
          (boolean j name))
      [ "all_identical"; "divergent_identical"; "divergence_exercised" ]
  in
  (ms, invs)

let extract_serve j =
  let config = config_of j in
  let simple =
    List.filter_map
      (fun name ->
        Option.map (fun v -> metric ~config ("serve." ^ name) v) (num j name))
      [ "warm_speedup" ]
  in
  let coalescing =
    match field j "coalescing" with
    | Some co -> (
        match num co "factor" with
        | Some v -> [ metric ~config "serve.coalescing_factor" v ]
        | None -> [])
    | None -> []
  in
  let throughput =
    match field j "throughput" with
    | Some (J.List rows) ->
        List.filter_map
          (fun row ->
            match (num row "clients", num row "vs_serial") with
            | Some c, Some v ->
                Some
                  (metric ~config
                     (Printf.sprintf "serve.tp%d_vs_serial" (int_of_float c))
                     v)
            | _ -> None)
          rows
    | _ -> []
  in
  let invs =
    List.filter_map
      (fun name ->
        Option.map
          (fun ok -> { inv_key = "serve." ^ name; ok })
          (boolean j name))
      [ "fingerprints_identical"; "warm_ok"; "tp4_ok" ]
  in
  (simple @ coalescing @ throughput, invs)

let extract j =
  match str j "bench" with
  | Some "cycle_skip" -> Some (extract_cycle_skip j)
  | Some "soa_core" -> Some (extract_soa_core j)
  | Some "telemetry_overhead" -> Some (extract_telemetry_overhead j)
  | Some "regdem" -> Some (extract_regdem j)
  | Some "serve" -> Some (extract_serve j)
  | Some "simt" -> Some (extract_simt j)
  | _ -> None

(* --- scan ------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan ~dir =
  let names =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n ->
           String.length n > 6
           && String.sub n 0 6 = "BENCH_"
           && Filename.check_suffix n ".json")
    |> List.sort String.compare
  in
  let metrics, invariants, sources =
    List.fold_left
      (fun (ms, is, srcs) name ->
        let parsed =
          try J.parse_opt (read_file (Filename.concat dir name))
          with Sys_error e -> Error e
        in
        match parsed with
        | Error _ -> (ms, is, srcs)
        | Ok j -> (
            match extract j with
            | None -> (ms, is, srcs)
            | Some (m, i) -> (ms @ m, is @ i, srcs @ [ name ])))
      ([], [], []) names
  in
  { metrics; invariants; sources }

(* --- baseline persistence ------------------------------------------- *)

let load_baseline path =
  if not (Sys.file_exists path) then Error (path ^ ": no such baseline")
  else
    match J.parse_opt (read_file path) with
    | Error e -> Error (path ^ ": " ^ e)
    | Ok j -> (
        match field j "metrics" with
        | Some (J.List rows) ->
            Ok
              (List.filter_map
                 (fun row ->
                   match (str row "key", num row "value") with
                   | Some key, Some value ->
                       Some
                         {
                           key;
                           value;
                           higher_better =
                             Option.value
                               (boolean row "higher_better")
                               ~default:true;
                           config = config_of row;
                         }
                   | _ -> None)
                 rows)
        | _ -> Error (path ^ ": missing \"metrics\" array"))

let write_baseline path snapshot =
  let row m =
    J.Obj
      [
        ("key", J.Str m.key);
        ("value", J.Num m.value);
        ("higher_better", J.Bool m.higher_better);
        ("config", J.Str m.config);
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "{\n  \"comment\": \"perf baseline; refresh with: \
                        regmutex report --write-baseline\",\n";
      output_string oc
        (Printf.sprintf "  \"sources\": %s,\n"
           (J.to_string (J.List (List.map (fun s -> J.Str s) snapshot.sources))));
      output_string oc "  \"metrics\": [\n";
      List.iteri
        (fun i m ->
          output_string oc
            (Printf.sprintf "    %s%s\n" (J.to_string (row m))
               (if i = List.length snapshot.metrics - 1 then "" else ",")))
        snapshot.metrics;
      output_string oc "  ]\n}\n")

(* --- comparison ------------------------------------------------------ *)

type verdict = {
  v_key : string;
  v_config : string;
  current : float;
  baseline : float;
  ratio : float;
}

type outcome = {
  compared : verdict list;
  skipped : (string * string) list;
  geomean : float option;
  failures : string list;
}

let check ?(tolerance = 0.05) snapshot baseline =
  let floor = 1. -. tolerance in
  let compared, skipped =
    List.fold_left
      (fun (cs, sk) m ->
        match List.find_opt (fun b -> String.equal b.key m.key) baseline with
        | None -> (cs, sk @ [ (m.key, "not in baseline") ])
        | Some b when not (String.equal b.config m.config) ->
            ( cs,
              sk
              @ [
                  ( m.key,
                    Printf.sprintf "config mismatch (%s vs baseline %s)"
                      m.config b.config );
                ] )
        | Some b when b.value <= 0. || m.value <= 0. ->
            (cs, sk @ [ (m.key, "non-positive value") ])
        | Some b ->
            let ratio =
              if m.higher_better then m.value /. b.value
              else b.value /. m.value
            in
            ( cs
              @ [
                  {
                    v_key = m.key;
                    v_config = m.config;
                    current = m.value;
                    baseline = b.value;
                    ratio;
                  };
                ],
              sk ))
      ([], []) snapshot.metrics
  in
  let stale =
    List.filter_map
      (fun b ->
        if List.exists (fun m -> String.equal m.key b.key) snapshot.metrics
        then None
        else Some (b.key, "in baseline but not measured"))
      baseline
  in
  let skipped = skipped @ stale in
  let geomean =
    match compared with
    | [] -> None
    | vs ->
        let sum = List.fold_left (fun a v -> a +. log v.ratio) 0. vs in
        Some (exp (sum /. float_of_int (List.length vs)))
  in
  let failures =
    List.filter_map
      (fun v ->
        if v.ratio < floor then
          Some
            (Printf.sprintf "%s regressed: %.4g -> %.4g (ratio %.3f < %.3f)"
               v.v_key v.baseline v.current v.ratio floor)
        else None)
      compared
    @ (match geomean with
      | Some g when g < floor ->
          [ Printf.sprintf "geomean ratio %.3f < %.3f" g floor ]
      | _ -> [])
    @ List.filter_map
        (fun i ->
          if i.ok then None
          else Some (Printf.sprintf "invariant %s is false" i.inv_key))
        snapshot.invariants
  in
  { compared; skipped; geomean; failures }

(* --- rendering ------------------------------------------------------- *)

let pp_snapshot ppf s =
  Format.fprintf ppf "Artifacts: %s@."
    (match s.sources with [] -> "(none)" | l -> String.concat ", " l);
  Format.fprintf ppf "@.%-40s %9s  %s  %s@." "metric" "value" "dir" "config";
  List.iter
    (fun m ->
      Format.fprintf ppf "%-40s %9.3f  %s  %s@." m.key m.value
        (if m.higher_better then "up " else "dn ")
        m.config)
    s.metrics;
  if s.invariants <> [] then begin
    Format.fprintf ppf "@.";
    List.iter
      (fun i ->
        Format.fprintf ppf "%-40s %9s@." i.inv_key
          (if i.ok then "ok" else "FALSE"))
      s.invariants
  end

let pp_outcome ppf o =
  if o.compared <> [] then begin
    Format.fprintf ppf "@.%-40s %9s %9s %7s@." "vs baseline" "base" "now"
      "ratio";
    List.iter
      (fun v ->
        Format.fprintf ppf "%-40s %9.3f %9.3f %7.3f@." v.v_key v.baseline
          v.current v.ratio)
      o.compared
  end;
  List.iter
    (fun (k, why) -> Format.fprintf ppf "skipped %-32s %s@." k why)
    o.skipped;
  (match o.geomean with
  | Some g -> Format.fprintf ppf "@.geomean ratio vs baseline: %.3f@." g
  | None -> ());
  match o.failures with
  | [] -> Format.fprintf ppf "perf check: PASS@."
  | fs ->
      Format.fprintf ppf "perf check: FAIL@.";
      List.iter (fun f -> Format.fprintf ppf "  - %s@." f) fs
