module Runner = Regmutex.Runner
module Technique = Regmutex.Technique

type row = {
  app : string;
  by_es : (int * (float * float) option) list;
  heuristic_es : int option;
}

let sample cfg spec es =
  let run = Engine.run ~es_override:es cfg ~arch:cfg.Exp_config.arch Technique.Regmutex spec in
  match run.Runner.prepared.Technique.choice with
  | None -> None
  | Some _ -> Some (run.Runner.theoretical_occupancy, run.Runner.acquire_ratio)

let row_of cfg spec =
  let auto = Engine.run cfg ~arch:cfg.Exp_config.arch Technique.Regmutex spec in
  {
    app = spec.Workloads.Spec.name;
    by_es = List.map (fun es -> (es, sample cfg spec es)) Fig10.es_values;
    heuristic_es =
      Option.map
        (fun c -> c.Regmutex.Es_heuristic.es)
        auto.Runner.prepared.Technique.choice;
  }

let rows cfg =
  let arch = cfg.Exp_config.arch in
  Engine.prefetch cfg
    (List.concat_map
       (fun spec ->
         Engine.cell ~arch Technique.Regmutex spec
         :: List.map
              (fun es -> Engine.cell ~es_override:es ~arch Technique.Regmutex spec)
              Fig10.es_values)
       Workloads.Registry.occupancy_limited);
  List.map (row_of cfg) Workloads.Registry.occupancy_limited

let print_part rows ~title ~select =
  print_endline title;
  let cell heuristic_es (es, v) =
    let mark = if heuristic_es = Some es then "*" else "" in
    match v with None -> "-" | Some pair -> Table.occ (select pair) ^ mark
  in
  print_endline
    (Table.render
       ~columns:
         (("app", Table.Left)
         :: List.map (fun es -> (Printf.sprintf "|Es|=%d" es, Table.Right)) Fig10.es_values)
       (List.map (fun r -> r.app :: List.map (cell r.heuristic_es) r.by_es) rows))

let print cfg =
  let rows = rows cfg in
  print_part rows ~title:"Figure 11(a): theoretical occupancy vs |Es| (* = heuristic pick)"
    ~select:fst;
  print_newline ();
  print_part rows ~title:"Figure 11(b): successful acquires vs |Es| (* = heuristic pick)"
    ~select:snd
