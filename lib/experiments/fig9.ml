module Runner = Regmutex.Runner
module Technique = Regmutex.Technique

type row_a = {
  app : string;
  owf_red : float;
  rfv_red : float;
  regmutex_red : float;
}

type row_b = {
  app : string;
  none_inc : float;
  owf_inc : float;
  rfv_inc : float;
  regmutex_inc : float;
}

let row_a_of cfg spec =
  let arch = cfg.Exp_config.arch in
  let baseline = Engine.run cfg ~arch Technique.Baseline spec in
  let red t = Runner.reduction_pct ~baseline (Engine.run cfg ~arch t spec) in
  {
    app = spec.Workloads.Spec.name;
    owf_red = red Technique.Owf;
    rfv_red = red Technique.Rfv;
    regmutex_red = red Technique.Regmutex;
  }

let row_b_of cfg spec =
  let full = Engine.run cfg ~arch:cfg.Exp_config.arch Technique.Baseline spec in
  let inc t =
    Runner.increase_pct ~baseline:full
      (Engine.run cfg ~arch:cfg.Exp_config.half_arch t spec)
  in
  {
    app = spec.Workloads.Spec.name;
    none_inc = inc Technique.Baseline;
    owf_inc = inc Technique.Owf;
    rfv_inc = inc Technique.Rfv;
    regmutex_inc = inc Technique.Regmutex;
  }

let techniques =
  [ Technique.Baseline; Technique.Owf; Technique.Rfv; Technique.Regmutex ]

let rows_a cfg =
  let arch = cfg.Exp_config.arch in
  Engine.prefetch cfg
    (List.concat_map
       (fun spec -> List.map (fun t -> Engine.cell ~arch t spec) techniques)
       Workloads.Registry.occupancy_limited);
  List.map (row_a_of cfg) Workloads.Registry.occupancy_limited

let rows_b cfg =
  Engine.prefetch cfg
    (List.concat_map
       (fun spec ->
         Engine.cell ~arch:cfg.Exp_config.arch Technique.Baseline spec
         :: List.map
              (fun t -> Engine.cell ~arch:cfg.Exp_config.half_arch t spec)
              techniques)
       Workloads.Registry.regfile_sensitive);
  List.map (row_b_of cfg) Workloads.Registry.regfile_sensitive

let print_a cfg =
  let rows = rows_a cfg in
  print_endline "Figure 9(a): cycle reduction vs related work (baseline arch)";
  print_endline
    (Table.render
       ~columns:
         [ ("app", Table.Left); ("OWF", Table.Right); ("RFV", Table.Right);
           ("RegMutex", Table.Right) ]
       (List.map
          (fun (r : row_a) ->
            [ r.app; Table.pct r.owf_red; Table.pct r.rfv_red;
              Table.pct r.regmutex_red ])
          rows));
  Printf.printf "means: OWF %s, RFV %s, RegMutex %s (paper: 1.9%% / 16.2%% / 12.8%%)\n"
    (Table.pct (Table.mean (List.map (fun (r : row_a) -> r.owf_red) rows)))
    (Table.pct (Table.mean (List.map (fun (r : row_a) -> r.rfv_red) rows)))
    (Table.pct (Table.mean (List.map (fun (r : row_a) -> r.regmutex_red) rows)))

let print_b cfg =
  let rows = rows_b cfg in
  print_endline "Figure 9(b): cycle increase with half the register file";
  print_endline
    (Table.render
       ~columns:
         [ ("app", Table.Left); ("none", Table.Right); ("OWF", Table.Right);
           ("RFV", Table.Right); ("RegMutex", Table.Right) ]
       (List.map
          (fun r ->
            [ r.app; Table.pct r.none_inc; Table.pct r.owf_inc;
              Table.pct r.rfv_inc; Table.pct r.regmutex_inc ])
          rows));
  Printf.printf
    "means: none %s, OWF %s, RFV %s, RegMutex %s (paper: 22.9%% / 20.6%% / 5.9%% / 10.8%%)\n"
    (Table.pct (Table.mean (List.map (fun r -> r.none_inc) rows)))
    (Table.pct (Table.mean (List.map (fun r -> r.owf_inc) rows)))
    (Table.pct (Table.mean (List.map (fun r -> r.rfv_inc) rows)))
    (Table.pct (Table.mean (List.map (fun r -> r.regmutex_inc) rows)))
