module Arch_config = Gpu_uarch.Arch_config
module Runner = Regmutex.Runner
module Technique = Regmutex.Technique

type row = {
  app : string;
  scheduler : string;
  baseline_cycles : int;
  regmutex_cycles : int;
  reduction_pct : float;
  acquire_ratio : float;
}

let schedulers =
  [ ("gto", Arch_config.Gto); ("lrr", Arch_config.Lrr);
    ("two-level/8", Arch_config.Two_level 8) ]

let apps = [ "BFS"; "ParticleFilter"; "RadixSort" ]

let row_of cfg spec (label, kind) =
  let arch = { cfg.Exp_config.arch with Arch_config.scheduler = kind } in
  let baseline = Engine.run ~variant:label cfg ~arch Technique.Baseline spec in
  let rm = Engine.run ~variant:label cfg ~arch Technique.Regmutex spec in
  {
    app = spec.Workloads.Spec.name;
    scheduler = label;
    baseline_cycles = baseline.Runner.cycles;
    regmutex_cycles = rm.Runner.cycles;
    reduction_pct = Runner.reduction_pct ~baseline rm;
    acquire_ratio = rm.Runner.acquire_ratio;
  }

let rows cfg =
  let specs = List.map Workloads.Registry.find apps in
  Engine.prefetch cfg
    (List.concat_map
       (fun spec ->
         List.concat_map
           (fun (label, kind) ->
             let arch =
               { cfg.Exp_config.arch with Arch_config.scheduler = kind }
             in
             [ Engine.cell ~variant:label ~arch Technique.Baseline spec;
               Engine.cell ~variant:label ~arch Technique.Regmutex spec ])
           schedulers)
       specs);
  List.concat_map (fun spec -> List.map (row_of cfg spec) schedulers) specs

let print cfg =
  let rows = rows cfg in
  print_endline "Scheduler ablation: RegMutex under GTO / LRR / two-level";
  print_endline
    (Table.render
       ~columns:
         [ ("app", Table.Left); ("scheduler", Table.Left); ("base cyc", Table.Right);
           ("rm cyc", Table.Right); ("cyc red.", Table.Right); ("acq ok", Table.Right) ]
       (List.map
          (fun r ->
            [ r.app; r.scheduler; Table.int_cell r.baseline_cycles;
              Table.int_cell r.regmutex_cycles; Table.pct r.reduction_pct;
              Table.occ r.acquire_ratio ])
          rows))
