(** Head-to-head capstone figure: every registered technique (via
    {!Regmutex.Technique.plugins}) on the occupancy-limited workload set,
    reporting mean theoretical occupancy, mean cycle reduction vs
    baseline, hardware tracking-storage bits, and modelled energy
    ({!Gpu_uarch.Energy_model}) with its overhead relative to baseline. *)

type row = {
  tech : Regmutex.Technique.t;
  mean_occupancy : float;
  mean_reduction : float;  (** cycle reduction vs baseline, percent *)
  storage_bits : int;
  mean_energy_nj : float;
  mean_energy_overhead : float;  (** total energy vs baseline, percent *)
}

(** One row per technique, in {!Regmutex.Technique.all} order. *)
val rows : Exp_config.t -> row list

val print : Exp_config.t -> unit
