module Runner = Regmutex.Runner
module Technique = Regmutex.Technique

type row = {
  app : string;
  default_ratio : float;
  paired_ratio : float;
}

let row_of cfg spec =
  let arch = Exp_config.eval_arch cfg spec in
  let default_rm = Engine.run cfg ~arch Technique.Regmutex spec in
  let paired = Engine.run cfg ~arch Technique.Regmutex_paired spec in
  {
    app = spec.Workloads.Spec.name;
    default_ratio = default_rm.Runner.acquire_ratio;
    paired_ratio = paired.Runner.acquire_ratio;
  }

let rows cfg =
  Engine.prefetch cfg
    (List.concat_map
       (fun spec ->
         let arch = Exp_config.eval_arch cfg spec in
         [ Engine.cell ~arch Technique.Regmutex spec;
           Engine.cell ~arch Technique.Regmutex_paired spec ])
       Workloads.Registry.all);
  List.map (row_of cfg) Workloads.Registry.all

let print cfg =
  let rows = rows cfg in
  print_endline
    "Figure 13: acquire success rate (left 8: baseline arch; right 8: half RF)";
  print_endline
    (Table.render
       ~columns:
         [ ("app", Table.Left); ("default", Table.Right); ("paired", Table.Right) ]
       (List.map
          (fun r -> [ r.app; Table.occ r.default_ratio; Table.occ r.paired_ratio ])
          rows))
