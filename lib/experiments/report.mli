(** Performance-trajectory report: ingest the committed [BENCH_*.json]
    artifacts, compare them against the checked-in baseline
    ([bench/trajectory.json]) and fail on regressions.

    Every bench harness (cycles, soa, telemetry, serve) writes one JSON
    artifact at the repo root. {!scan} normalizes each known kind into

    - {e metrics}: named scalars with a direction ([higher_better]) and
      the grid config ([quick] or [full]) they were measured under —
      speedups, coalescing factors, the telemetry overhead as a
      [1 + pct/100] factor;
    - {e invariants}: named booleans that must hold outright
      (fingerprint identity across stepping modes, the serve gates).

    {!check} compares a scan against a baseline metric list: each metric
    present in both (same key {e and} same config — quick and full
    timings are never comparable) gets a ratio normalized so [>= 1] is
    an improvement; the check fails when any ratio or the geomean of
    all ratios falls below [1 - tolerance], or any invariant is false.
    Metrics missing on either side are reported as skipped, never
    failed, so adding a bench never breaks the gate retroactively. *)

type metric = {
  key : string;  (** e.g. ["serve.warm_speedup"] *)
  value : float;
  higher_better : bool;
  config : string;  (** ["quick"] | ["full"] (or [""] when unstated) *)
}

type invariant = { inv_key : string; ok : bool }

type snapshot = {
  metrics : metric list;
  invariants : invariant list;
  sources : string list;  (** artifact filenames ingested, sorted *)
}

(** Walk up from [start] (default the working directory) to the first
    directory containing [dune-project] — where the bench artifacts and
    [bench/trajectory.json] live. *)
val find_repo_root : ?start:string -> unit -> string option

(** Ingest every [BENCH_*.json] directly under [dir]. Unknown bench
    kinds and unparseable files are skipped (they appear in no list);
    the scan never raises. *)
val scan : dir:string -> snapshot

(** Read a baseline written by {!write_baseline}. *)
val load_baseline : string -> (metric list, string) result

(** Write [snapshot]'s metrics as the new baseline (pretty JSON). *)
val write_baseline : string -> snapshot -> unit

type verdict = {
  v_key : string;
  v_config : string;
  current : float;
  baseline : float;
  ratio : float;  (** normalized: [>= 1] is an improvement *)
}

type outcome = {
  compared : verdict list;
  skipped : (string * string) list;  (** key, reason *)
  geomean : float option;  (** of all compared ratios; [None] if none *)
  failures : string list;  (** empty = the check passes *)
}

(** [check ~tolerance snapshot baseline] — [tolerance] (default [0.05])
    is the allowed fractional slowdown per metric and on the geomean. *)
val check : ?tolerance:float -> snapshot -> metric list -> outcome

val pp_snapshot : Format.formatter -> snapshot -> unit

val pp_outcome : Format.formatter -> outcome -> unit
