module Runner = Regmutex.Runner
module Technique = Regmutex.Technique
module E = Gpu_uarch.Energy_model

type row = {
  tech : Technique.t;
  mean_occupancy : float;
  mean_reduction : float;      (* cycle reduction vs baseline, % *)
  storage_bits : int;
  mean_energy_nj : float;
  mean_energy_overhead : float;  (* total energy vs baseline, % *)
}

(* Every registered technique — the figure iterates the plugin list, so a
   technique added behind {!Technique.plugin_of} appears here without the
   figure changing. *)
let specs () = Workloads.Registry.occupancy_limited

let rows cfg =
  let arch = cfg.Exp_config.arch in
  let specs = specs () in
  Engine.prefetch cfg
    (List.concat_map
       (fun spec ->
         List.map
           (fun p -> Engine.cell ~arch p.Technique.variant spec)
           Technique.plugins)
       specs);
  let base_runs =
    List.map (fun spec -> Engine.run cfg ~arch Technique.Baseline spec) specs
  in
  let base_energy =
    List.map
      (fun (b : Runner.run) ->
        (Technique.energy arch Technique.Baseline b.Runner.stats).E.total_nj)
      base_runs
  in
  List.map
    (fun p ->
      let t = p.Technique.variant in
      let runs = List.map (fun spec -> Engine.run cfg ~arch t spec) specs in
      let energies =
        List.map
          (fun (r : Runner.run) ->
            (p.Technique.plugin_energy arch r.Runner.stats).E.total_nj)
          runs
      in
      {
        tech = t;
        mean_occupancy =
          Table.mean
            (List.map (fun r -> r.Runner.theoretical_occupancy) runs);
        mean_reduction =
          Table.mean
            (List.map2
               (fun baseline r -> Runner.reduction_pct ~baseline r)
               base_runs runs);
        storage_bits = Technique.storage_bits arch t;
        mean_energy_nj = Table.mean energies;
        mean_energy_overhead =
          Table.mean
            (List.map2 (fun e b -> (e -. b) /. b *. 100.) energies base_energy);
      })
    Technique.plugins

let print cfg =
  let rs = rows cfg in
  print_endline
    "Head-to-head: all techniques on the occupancy-limited set (means)";
  print_endline
    (Table.render
       ~columns:
         [ ("technique", Table.Left); ("occupancy", Table.Right);
           ("cycle red", Table.Right); ("storage bits", Table.Right);
           ("energy nJ", Table.Right); ("energy vs base", Table.Right) ]
       (List.map
          (fun r ->
            [ Technique.name r.tech;
              Table.occ r.mean_occupancy;
              Table.pct r.mean_reduction;
              Table.int_cell r.storage_bits;
              Printf.sprintf "%.1f" r.mean_energy_nj;
              Table.pct r.mean_energy_overhead ])
          rs));
  print_endline
    "energy: per-access RF/shared model (see Gpu_uarch.Energy_model) —\n\
     relative comparisons between techniques, not absolute joules"
