module Runner = Regmutex.Runner
module Technique = Regmutex.Technique
module Stats = Gpu_sim.Stats
module E = Gpu_uarch.Energy_model

type row = {
  tech : Technique.t;
  mean_occupancy : float;
  mean_reduction : float;      (* cycle reduction vs baseline, % *)
  storage_bits : int;
  mean_energy_nj : float;
  mean_energy_overhead : float;  (* total energy vs baseline, % *)
}

(* Every registered technique — the figure iterates the plugin list, so a
   technique added behind {!Technique.plugin_of} appears here without the
   figure changing. *)
let specs () = Workloads.Registry.occupancy_limited

let rows cfg =
  let arch = cfg.Exp_config.arch in
  let specs = specs () in
  Engine.prefetch cfg
    (List.concat_map
       (fun spec ->
         List.map
           (fun p -> Engine.cell ~arch p.Technique.variant spec)
           Technique.plugins)
       specs);
  let base_runs =
    List.map (fun spec -> Engine.run cfg ~arch Technique.Baseline spec) specs
  in
  let base_energy =
    List.map
      (fun (b : Runner.run) ->
        (Technique.energy arch Technique.Baseline b.Runner.stats).E.total_nj)
      base_runs
  in
  List.map
    (fun p ->
      let t = p.Technique.variant in
      let runs = List.map (fun spec -> Engine.run cfg ~arch t spec) specs in
      let energies =
        List.map
          (fun (r : Runner.run) ->
            (p.Technique.plugin_energy arch r.Runner.stats).E.total_nj)
          runs
      in
      {
        tech = t;
        mean_occupancy =
          Table.mean
            (List.map (fun r -> r.Runner.theoretical_occupancy) runs);
        mean_reduction =
          Table.mean
            (List.map2
               (fun baseline r -> Runner.reduction_pct ~baseline r)
               base_runs runs);
        storage_bits = Technique.storage_bits arch t;
        mean_energy_nj = Table.mean energies;
        mean_energy_overhead =
          Table.mean
            (List.map2 (fun e b -> (e -. b) /. b *. 100.) energies base_energy);
      })
    Technique.plugins

(* --- divergence rows ---------------------------------------------------- *)

(* The Table I kernels are warp-uniform, so the head-to-head above says
   nothing about behaviour under real branch divergence. These rows run
   the divergent registry (kernels that read [%laneid]) under [--simt]:
   same techniques, but warps now split, reconverge and predicate lanes
   off, so per-lane occupancy becomes a first-class column. RegDem's row
   measures timing only — its warp-granular spill window is value-unsound
   under divergence (a lane-divergent demoted register is clobbered on
   spill), which is why the fuzz oracle excludes it from the divergent
   value differential. *)

let simt_options = { Technique.default_options with Technique.simt = true }

type divergent_row = {
  d_tech : Technique.t;
  d_mean_occupancy : float;
  d_mean_reduction : float;  (* cycle reduction vs the SIMT baseline, % *)
  d_mean_lane_occ : float;   (* active / (active + predicated) lane-cycles *)
}

let lane_occupancy (r : Runner.run) =
  let a = float_of_int r.Runner.stats.Stats.active_lane_cycles
  and p = float_of_int r.Runner.stats.Stats.predicated_lane_cycles in
  if a +. p > 0. then a /. (a +. p) else 1.

let divergent_rows cfg =
  let arch = cfg.Exp_config.arch in
  let specs = Workloads.Registry.divergent in
  Engine.prefetch cfg
    (List.concat_map
       (fun spec ->
         List.map
           (fun p ->
             Engine.cell ~options:simt_options ~arch p.Technique.variant spec)
           Technique.plugins)
       specs);
  let base_runs =
    List.map
      (fun spec ->
        Engine.run cfg ~options:simt_options ~arch Technique.Baseline spec)
      specs
  in
  List.map
    (fun p ->
      let t = p.Technique.variant in
      let runs =
        List.map
          (fun spec -> Engine.run cfg ~options:simt_options ~arch t spec)
          specs
      in
      {
        d_tech = t;
        d_mean_occupancy =
          Table.mean
            (List.map (fun r -> r.Runner.theoretical_occupancy) runs);
        d_mean_reduction =
          Table.mean
            (List.map2
               (fun baseline r -> Runner.reduction_pct ~baseline r)
               base_runs runs);
        d_mean_lane_occ = Table.mean (List.map lane_occupancy runs);
      })
    Technique.plugins

let print cfg =
  let rs = rows cfg in
  print_endline
    "Head-to-head: all techniques on the occupancy-limited set (means)";
  print_endline
    (Table.render
       ~columns:
         [ ("technique", Table.Left); ("occupancy", Table.Right);
           ("cycle red", Table.Right); ("storage bits", Table.Right);
           ("energy nJ", Table.Right); ("energy vs base", Table.Right) ]
       (List.map
          (fun r ->
            [ Technique.name r.tech;
              Table.occ r.mean_occupancy;
              Table.pct r.mean_reduction;
              Table.int_cell r.storage_bits;
              Printf.sprintf "%.1f" r.mean_energy_nj;
              Table.pct r.mean_energy_overhead ])
          rs));
  print_endline
    "energy: per-access RF/shared model (see Gpu_uarch.Energy_model) —\n\
     relative comparisons between techniques, not absolute joules";
  print_newline ();
  let drs = divergent_rows cfg in
  print_endline
    "Divergence head-to-head: divergent kernels (read %laneid) under --simt";
  print_endline
    (Table.render
       ~columns:
         [ ("technique", Table.Left); ("occupancy", Table.Right);
           ("cycle red", Table.Right); ("lane occ", Table.Right) ]
       (List.map
          (fun r ->
            [ Technique.name r.d_tech;
              Table.occ r.d_mean_occupancy;
              Table.pct r.d_mean_reduction;
              Table.occ r.d_mean_lane_occ ])
          drs));
  print_endline
    "regdem row: timing only — its warp-granular spill window collapses\n\
     lane-divergent values (a demoted register spills one value per warp),\n\
     so divergence vanishes and values are unsound; the fuzz value oracle\n\
     excludes it under divergence for the same reason"
