(** Managed on-disk result store under [<root>/<version-tag>/].

    One marshalled [(key, run)] file per cache key, as before, plus an
    [INDEX] file recording size and last-use order so the store can be
    size-bounded: when {!set_limit_bytes} is exceeded, least-recently-used
    entries are evicted. Entries {!pin}ned by the caller (the serve
    daemon pins every key it is currently computing or answering) are
    never evicted. {!compact} drops whole version directories left behind
    by older schemas or simulator builds.

    All operations are serialized by an internal mutex, so the store may
    be touched from any domain. *)

type stats = {
  entries : int;        (** files tracked in the current version dir *)
  bytes : int;          (** their total size *)
  limit_bytes : int option;
  evictions : int;      (** LRU evictions performed by this process *)
  version : string;     (** current version tag, e.g. ["v1-abc1234"] *)
}

(** Enable ([Some dir], conventionally ["_results"]) or disable ([None])
    the store. Changing the root resets the in-memory index; the
    directory's [INDEX] file is reloaded lazily on first use (files
    present on disk but missing from the index are adopted with
    last-use 0, i.e. first in line for eviction). *)
val set_root : string option -> unit

val root : unit -> string option

(** Size bound in bytes ([None], the default, is unbounded). Takes
    effect on the next {!store}. *)
val set_limit_bytes : int option -> unit

val limit_bytes : unit -> int option

(** [v<schema>-<git-describe>] — the version directory name. *)
val version_tag : unit -> string

(** [load key] reads the entry back (and marks it most recently used),
    [None] when disabled, absent, or unreadable. *)
val load : string -> Regmutex.Runner.run option

(** [store key run] writes atomically (tmp + rename), updates the index,
    then evicts LRU entries until the store fits the limit. *)
val store : string -> Regmutex.Runner.run -> unit

(** Pins are counted: [pin] twice needs [unpin] twice. Pinning is by
    key and is meaningful even before the entry exists (the daemon pins
    at enqueue time, before the compute finishes). *)
val pin : string -> unit

val unpin : string -> unit

(** [compact ()] removes every version directory under the root except
    the current one, returning [(files_removed, bytes_removed)].
    [(0, 0)] when the store is disabled. *)
val compact : unit -> int * int

val stats : unit -> stats
