module Transform = Regmutex.Transform
module Technique = Regmutex.Technique
module Runner = Regmutex.Runner

type variant = {
  label : string;
  options : Transform.options;
}

let variants =
  let d = Transform.default_options in
  [ { label = "full pass"; options = d };
    { label = "no widening"; options = { d with Transform.widen = false } };
    { label = "no permutation"; options = { d with Transform.permute = false } };
    { label = "no mov-compaction"; options = { d with Transform.mov_compact = false } };
    { label = "injection only";
      options = { Transform.widen = true; permute = false; mov_compact = false } } ]

type row = {
  app : string;
  label : string;
  ext_fraction : float;
  acquires : int;
  movs : int;
  cycles : int;
}

let apps = [ "CUTCP"; "HeartWall" ]

let run_variant cfg spec variant =
  let arch = Exp_config.eval_arch cfg spec in
  let options = { Technique.default_options with transform = variant.options } in
  Engine.run ~options ~variant:variant.label cfg ~arch Technique.Regmutex spec

let row_of cfg spec variant =
  let run = run_variant cfg spec variant in
  let plan = run.Runner.prepared.Technique.plan in
  {
    app = spec.Workloads.Spec.name;
    label = variant.label;
    ext_fraction =
      (match plan with Some p -> p.Transform.ext_static_fraction | None -> 0.);
    acquires = (match plan with Some p -> p.Transform.n_acquires | None -> 0);
    movs = (match plan with Some p -> p.Transform.n_movs | None -> 0);
    cycles = run.Runner.cycles;
  }

let rows cfg =
  let specs = List.map Workloads.Registry.find apps in
  Engine.prefetch cfg
    (List.concat_map
       (fun spec ->
         List.map
           (fun variant ->
             let arch = Exp_config.eval_arch cfg spec in
             let options =
               { Technique.default_options with transform = variant.options }
             in
             Engine.cell ~options ~variant:variant.label ~arch Technique.Regmutex
               spec)
           variants)
       specs);
  List.concat_map (fun spec -> List.map (row_of cfg spec) variants) specs

let print cfg =
  let rows = rows cfg in
  print_endline "Ablation: compiler-pass variants (RegMutex, evaluation arch)";
  print_endline
    (Table.render
       ~columns:
         [ ("app", Table.Left); ("variant", Table.Left); ("ext frac", Table.Right);
           ("acquires", Table.Right); ("movs", Table.Right); ("cycles", Table.Right) ]
       (List.map
          (fun r ->
            [ r.app; r.label; Table.occ r.ext_fraction; Table.int_cell r.acquires;
              Table.int_cell r.movs; Table.int_cell r.cycles ])
          rows))
