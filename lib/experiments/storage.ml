module S = Gpu_uarch.Storage_cost

let print cfg =
  let arch = cfg.Exp_config.arch in
  print_endline "Hardware storage cost per SM (48-warp baseline)";
  (* Every registered technique, through the plugin list — zero-cost
     entries (baseline, RegDem) print as 0 bits rather than vanishing. *)
  List.iter
    (fun p ->
      Format.printf "%a@." S.pp
        (S.bits arch p.Regmutex.Technique.plugin_storage))
    Regmutex.Technique.plugins;
  Format.printf "RFV / RegMutex ratio: %.1fx (paper: >81x)@."
    (S.ratio arch S.Regmutex_default S.Rfv);
  Format.printf "RegMutex / paired ratio: %.1fx (paper: >20x)@."
    (S.ratio arch S.Regmutex_paired S.Regmutex_default)
