module Runner = Regmutex.Runner
module Technique = Regmutex.Technique

type row = {
  app : string;
  baseline_cycles : int;
  regmutex_cycles : int;
  reduction_pct : float;
  occ_before : float;
  occ_after : float;
  sections : int;
  acquire_ratio : float;
}

let row_of cfg spec =
  let arch = cfg.Exp_config.arch in
  let baseline = Engine.run cfg ~arch Technique.Baseline spec in
  let rm = Engine.run cfg ~arch Technique.Regmutex spec in
  {
    app = spec.Workloads.Spec.name;
    baseline_cycles = baseline.Runner.cycles;
    regmutex_cycles = rm.Runner.cycles;
    reduction_pct = Runner.reduction_pct ~baseline rm;
    occ_before = baseline.Runner.theoretical_occupancy;
    occ_after = rm.Runner.theoretical_occupancy;
    sections = rm.Runner.srp_sections;
    acquire_ratio = rm.Runner.acquire_ratio;
  }

let rows cfg =
  let arch = cfg.Exp_config.arch in
  Engine.prefetch cfg
    (List.concat_map
       (fun spec ->
         [ Engine.cell ~arch Technique.Baseline spec;
           Engine.cell ~arch Technique.Regmutex spec ])
       Workloads.Registry.occupancy_limited);
  List.map (row_of cfg) Workloads.Registry.occupancy_limited

let mean_reduction rows = Table.mean (List.map (fun r -> r.reduction_pct) rows)

let print cfg =
  let rows = rows cfg in
  print_endline "Figure 7: RegMutex on register-occupancy-limited kernels (baseline arch)";
  print_endline
    (Table.render
       ~columns:
         [ ("app", Table.Left); ("base cyc", Table.Right); ("rm cyc", Table.Right);
           ("cyc red.", Table.Right); ("occ init", Table.Right);
           ("occ rm", Table.Right); ("SRP", Table.Right); ("acq ok", Table.Right) ]
       (List.map
          (fun r ->
            [ r.app; Table.int_cell r.baseline_cycles;
              Table.int_cell r.regmutex_cycles; Table.pct r.reduction_pct;
              Table.occ r.occ_before; Table.occ r.occ_after;
              Table.int_cell r.sections; Table.occ r.acquire_ratio ])
          rows));
  Printf.printf "mean cycle reduction: %s (paper: ~13%%, best BFS ~23%%)\n"
    (Table.pct (mean_reduction rows))
