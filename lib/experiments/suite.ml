type entry = {
  name : string;
  doc : string;
  print : Exp_config.t -> unit;
}

let all =
  [ { name = "table1"; doc = "Table I: per-workload |Bs| vs heuristic";
      print = Table1.print };
    { name = "fig1"; doc = "Figure 1: live/allocated register utilization";
      print = Fig1.print };
    { name = "fig2"; doc = "Figure 2: occupancy-limiter breakdown";
      print = Fig2.print };
    { name = "fig7"; doc = "Figure 7: cycle reduction, occupancy-limited set";
      print = Fig7.print };
    { name = "fig8"; doc = "Figure 8: half register file recovery";
      print = Fig8.print };
    { name = "fig9a"; doc = "Figure 9(a): vs OWF and RFV, baseline arch";
      print = Fig9.print_a };
    { name = "fig9b"; doc = "Figure 9(b): vs OWF and RFV, half register file";
      print = Fig9.print_b };
    { name = "fig10"; doc = "Figure 10: cycle reduction vs |Es|";
      print = Fig10.print };
    { name = "fig11"; doc = "Figure 11: occupancy and acquires vs |Es|";
      print = Fig11.print };
    { name = "fig12"; doc = "Figure 12: paired-warps specialization";
      print = Fig12.print };
    { name = "fig13"; doc = "Figure 13: acquire success rate";
      print = Fig13.print };
    { name = "head2head"; doc = "All techniques: occupancy, cycles, storage, energy";
      print = Head_to_head.print };
    { name = "storage"; doc = "Hardware storage cost per technique";
      print = Storage.print };
    { name = "ablation"; doc = "Compiler-pass ablation";
      print = Ablation.print };
    { name = "sched"; doc = "Warp-scheduler sensitivity";
      print = Sched_ablation.print } ]

let names = List.map (fun e -> e.name) all
let find name = List.find_opt (fun e -> e.name = name) all

let run cfg entries =
  List.iter
    (fun e ->
      Printf.printf "\n================ %s ================\n%!" e.name;
      e.print cfg)
    entries
